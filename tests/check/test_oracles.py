"""Each oracle must reject its bug class and accept the real compiler."""

from repro.check.driver import build_case, check_case
from repro.check.oracles import (
    ORACLE_NAMES,
    ORACLES,
    temp_live_range_size,
)
from repro.ir.builder import FunctionBuilder
from repro.ir.instructions import Output
from repro.ir.values import Const

from tests.check.conftest import (
    identity_mc_ssapre,
    premature_insertion,
    speculate_trapping,
)


def _first_failing_seed(shape, oracle, variant_name, variant_fn, seeds=40):
    """Scan seeds until the injected bug trips the given oracle."""
    for seed in range(seeds):
        result = check_case(
            build_case(
                seed, shape, extra_variants={variant_name: variant_fn}
            ),
            (oracle,),
        )
        failures = [
            f for f in result.failures
            if f.variant == variant_name and f.oracle == oracle
        ]
        if failures:
            return seed, result, failures
    raise AssertionError(
        f"{variant_name} never tripped the {oracle} oracle in {seeds} seeds"
    )


class TestRegistry:
    def test_registry_matches_names(self):
        assert tuple(ORACLES) == ORACLE_NAMES


class TestEquivalence:
    def test_catches_misplaced_insertion(self):
        _, _, failures = _first_failing_seed(
            "cint", "equiv", "buggy", premature_insertion
        )
        assert failures[0].kind == "divergence"
        assert "observable" in failures[0].detail

    def test_catches_extra_output(self):
        def noisy(func, profile):
            func.entry_block.body.append(Output(Const(424242)))
            func.mark_code_mutated()
            return func

        _, _, failures = _first_failing_seed("cint", "equiv", "noisy", noisy, seeds=3)
        assert failures[0].kind == "divergence"


class TestSafety:
    def test_catches_speculated_trapping_op(self):
        _, result, failures = _first_failing_seed(
            "cint", "safety", "spec", speculate_trapping
        )
        assert failures[0].kind == "unsafe"
        # The speculated program is still semantically equivalent (div is
        # total here): the bug is invisible to the equiv oracle, which is
        # exactly why the safety oracle exists.
        equiv = ORACLES["equiv"](result.case)
        assert not [
            f for f in equiv.failures if f.variant == "spec"
        ]


class TestOptimality:
    def test_catches_unoptimised_impostor(self):
        _, _, failures = _first_failing_seed(
            "cint", "optimal", "mc-ssapre", identity_mc_ssapre, seeds=10
        )
        assert failures[0].kind == "suboptimal"

    def test_real_compiler_is_optimal(self):
        for seed in range(3):
            result = check_case(build_case(seed, "cfp"), ("optimal",))
            (report,) = result.reports
            assert report.checks > 0
            assert report.passed


class TestLifetime:
    def test_real_compiler_passes(self):
        result = check_case(build_case(1, "cint"), ("lifetime",))
        (report,) = result.reports
        assert report.checks >= 3
        assert report.passed

    def test_temp_live_range_counts_only_pre_temps(self):
        b = FunctionBuilder("f", params=["a"])
        b.block("entry")
        b.assign("%pre1", "add", "a", 1)
        b.jump("next")
        b.block("next")
        b.assign("x", "add", "%pre1", "a")
        b.ret("x")
        func = b.build()
        # %pre1 is live into "next"; the ordinary variables are not counted.
        assert temp_live_range_size(func) == 1


class TestProbes:
    def test_real_compiler_reconstruction_matches(self):
        for seed in range(2):
            result = check_case(build_case(seed, "mem"), ("probes",))
            (report,) = result.reports
            # One placement check plus two engines per input.
            assert report.checks > 1
            assert report.passed

    def test_multi_exit_passes_vacuously(self):
        # Same arity as the seed-0 cint spec, so the control runs work.
        b = FunctionBuilder("twoexit", params=["p0", "p1", "p2"])
        b.block("entry")
        b.assign("c", "lt", "p0", "p1")
        b.branch("c", "yes", "no")
        b.block("yes")
        b.ret(1)
        b.block("no")
        b.ret(0)
        result = check_case(
            build_case(0, "cint", source=b.build()), ("probes",)
        )
        (report,) = result.reports
        # Placement refuses the two-return CFG; the certified fallback
        # is full counting, so only the placement attempt is counted.
        assert report.checks == 1
        assert report.passed
