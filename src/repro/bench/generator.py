"""Seeded random generator of structured, terminating IR programs.

Drives the property-based tests (arbitrary programs with known-safe
shape), the SPEC-like synthetic suite (:mod:`repro.bench.workloads`) and
the differential-testing harness (:mod:`repro.check`).

Termination guarantees, by construction:

* every generated program terminates — all loops are *counting loops*
  whose bound is a masked value (``(x & mask) + base`` with ``base >= 1``,
  so every trip count is a finite non-negative integer) and whose counter
  and bound variables are reserved names (``liN``/``lbN``) that the loop
  body never writes; the only writes are the scaffold's init and the
  ``i = add i, 1`` increment;
* trapping operators (``div``/``mod``) never threaten termination or the
  interpreter: their semantics are *total* (division by zero yields 0, see
  :mod:`repro.ir.ops`) — the ``trapping`` flag only restricts what the
  speculative PRE variants may hoist;
* every variable is defined before use on every path (locals are
  initialised at entry; loop counters are readable inside their own body
  only);
* control flow is reducible and branch conditions are data-dependent, so
  different inputs produce genuinely different profiles (train vs ref);
* a configurable set of *hot expressions* recurs throughout the program —
  over mostly-stable operands — creating the partial redundancies and
  loop invariants that PRE exists for.

Shape knobs distinguish the two benchmark families: CINT-like programs are
branch-heavy with shallow loops; CFP-like programs are loop-heavy with
deeper nests, longer trip counts, FP-flavoured operators and a higher
density of invariant expressions (which is why loop-based speculation
closes more of the gap there, mirroring the paper's Tables 1 and 2).

Trapping-op density
-------------------

Two schemes control how often a statement applies a trapping operator:

* the legacy two-roll scheme (``trapping_density=None``, the default):
  a statement first rolls for a hot expression (``hot_prob``), and only a
  *failed* hot roll may then roll for a trapping op (``trapping_prob``) —
  so the effective per-statement density is roughly
  ``(1 - output_prob) * (1 - hot_prob) * trapping_prob``.  This scheme is
  kept as the default because its exact random-stream consumption defines
  the canonical benchmark suite;
* the explicit scheme (``trapping_density=d``): a single roll partitions
  the non-output statement space into ``[0, d)`` trapping,
  ``[d, d + (1-d)*hot_prob)`` hot and the rest generic, making ``d`` the
  exact conditional probability that a computation statement traps.

Independently, ``trapping_hot_prob`` lets *hot expressions themselves* be
trapping (drawn from ``trapping_ops``), which manufactures partially
redundant trapping computations — the scenario the safety oracle of
:mod:`repro.check` exists to police.  Both knobs default to "off" and
consume no randomness when off, preserving every existing seed's program.

Composite chains
----------------

``composite_exprs``/``composite_depth``/``composite_prob`` add *nested
chains* over the hot expressions: a chain template is a hot expression
extended link by link (``x = a+b; u = x+c; w = u+d; …``), and each
emission site picks fresh intermediate targets.  Two sites of the same
template are therefore lexically *different* composite classes — their
redundancy only becomes first-order after a PRE round rewrites the
intermediates into shared temporaries, which is exactly the second-order
redundancy the rank-ordered iterative worklist
(:mod:`repro.core.worklist`) exists to chase.  All three knobs default
to "off" and consume no randomness when off.

Memory shape
------------

``arrays``/``mem_prob``/``store_density``/``alias_density``/``hot_loads``
add array loads and stores over the conservative alias model of
:mod:`repro.ir.memory`.  Array lengths are powers of two and every index
is either a constant in ``[0, len)`` or a masked variable
(``ax = x & (len-1)``), so generated programs never trap at runtime even
though variable-index load *classes* are lexically may-trapping.  Hot
load sites recur like hot expressions, creating partially redundant
loads; stores may-alias a hot site with probability ``alias_density``,
exercising the store-kill paths of every PRE variant.  Reusing
``trapping_hot_prob`` makes a hot load use a masked variable index
(safe-fallback class) instead of a constant one (speculatable class).
All knobs default to "off" and consume no randomness when off.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function

#: Operators used for computations (safe to speculate).
INT_OPS = ["add", "sub", "mul", "and", "or", "xor", "min", "max", "shl", "shr"]
FP_OPS = ["fadd", "fmul", "add", "sub", "mul", "min", "max"]
#: Comparison operators for branch/loop conditions.
CMP_OPS = ["lt", "le", "gt", "ge", "eq", "ne"]
#: Occasionally-used trapping operators (exercise the no-speculation path).
TRAPPING_OPS = ["div", "mod"]


@dataclass
class ProgramSpec:
    """Shape parameters of one generated program."""

    name: str = "generated"
    seed: int = 0
    params: int = 3
    locals_count: int = 6
    region_length: int = 5
    max_depth: int = 3
    branch_weight: float = 0.30
    loop_weight: float = 0.25
    loop_mask_bits: int = 4
    loop_base: int = 2
    hot_exprs: int = 4
    hot_prob: float = 0.55
    output_prob: float = 0.10
    #: Legacy trapping roll, taken only after a failed hot roll (see the
    #: module docstring for the effective density formula).
    trapping_prob: float = 0.03
    #: When set, the *exact* conditional probability that a computation
    #: statement applies a trapping operator (single-roll scheme).
    trapping_density: float | None = None
    #: Probability that each chosen hot expression uses a trapping op.
    trapping_hot_prob: float = 0.0
    #: The trapping operators the two knobs above draw from.
    trapping_ops: tuple[str, ...] = ("div", "mod")
    #: Number of composite chain templates (0 = off, no randomness used).
    composite_exprs: int = 0
    #: Extension links per chain: the operand nesting depth (= rank) of
    #: the deepest composite class a chain produces.
    composite_depth: int = 2
    #: Probability that a computation statement emits a whole composite
    #: chain (fresh intermediate targets per site) instead of a single
    #: statement.
    composite_prob: float = 0.0
    fp_flavor: bool = False
    stable_fraction: float = 0.5
    # -- memory shape (all default-off: no arrays, no extra randomness) --
    #: Number of declared arrays (0 = scalar-only program).
    arrays: int = 0
    #: log2 upper bound on array lengths; lengths are powers of two so a
    #: masked index (``and x, len-1``) is in-bounds *by construction* —
    #: generated programs never trap at runtime.
    array_length_bits: int = 3
    #: Probability that a computation statement is a memory access.
    mem_prob: float = 0.0
    #: Fraction of memory accesses that are stores.
    store_density: float = 0.25
    #: Probability that a store targets a hot load's exact location (a
    #: may-alias kill of that load class) rather than a random cell.
    alias_density: float = 0.5
    #: Number of recurring hot (array, index) load sites — the memory
    #: analogue of ``hot_exprs``, creating partially redundant loads.
    hot_loads: int = 3

    def family_ops(self) -> list[str]:
        return FP_OPS if self.fp_flavor else INT_OPS

    def effective_trapping_density(self) -> float:
        """The per-computation-statement probability of a trapping op.

        Exact under the explicit scheme; the legacy two-roll estimate
        otherwise (hot expressions themselves may add more via
        ``trapping_hot_prob``).
        """
        if self.trapping_density is not None:
            return self.trapping_density
        return (1.0 - self.hot_prob) * self.trapping_prob


@dataclass
class GeneratedProgram:
    """The generated function plus metadata tests find useful."""

    func: Function
    spec: ProgramSpec
    hot_expressions: list[tuple[str, str, str]] = field(default_factory=list)
    #: Chain templates: ``(op, x, y)`` base plus ``(op, None, y)`` links
    #: (``None`` marks "previous link's value").
    composite_chains: list[list[tuple[str, str | None, str]]] = field(
        default_factory=list
    )
    #: Recurring (array, index) load sites; index is an ``int`` constant
    #: (a provably in-bounds, speculatable class) or a ``str`` masked
    #: index variable (a may-trap class that must take the safe fallback).
    hot_load_sites: list[tuple[str, object]] = field(default_factory=list)


class _Generator:
    def __init__(self, spec: ProgramSpec) -> None:
        self.spec = spec
        self.rng = random.Random(spec.seed)
        params = [f"p{i}" for i in range(spec.params)]
        self.builder = FunctionBuilder(spec.name, params=params)
        self.mutable_vars: list[str] = []
        self.stable_vars: list[str] = []
        self.all_vars: list[str] = list(params)
        self.loop_counter = 0
        self.hot: list[tuple[str, str, str]] = []
        self.chains: list[list[tuple[str, str | None, str]]] = []
        #: ``(name, length, masked_index_var)`` per declared array.
        self.arrays_info: list[tuple[str, int, str]] = []
        self.hot_load_sites: list[tuple[str, object]] = []

    # ------------------------------------------------------------------
    def generate(self) -> GeneratedProgram:
        spec = self.spec
        b = self.builder
        b.block("entry")
        # Initialise locals from parameters and constants.
        for i in range(spec.locals_count):
            name = f"v{i}"
            if self.rng.random() < 0.5 and spec.params:
                src = self.rng.choice(self.all_vars)
                b.assign(name, "add", src, self.rng.randint(0, 9))
            else:
                b.copy(name, self.rng.randint(0, 63))
            self.all_vars.append(name)
            if self.rng.random() < spec.stable_fraction:
                self.stable_vars.append(name)
            else:
                self.mutable_vars.append(name)
        if not self.mutable_vars:
            self.mutable_vars.append(self.stable_vars.pop())
        if not self.stable_vars:
            self.stable_vars.append("v0")

        # Choose the recurring hot expressions (mostly over stable vars so
        # loop invariance arises naturally).
        ops = spec.family_ops()
        for _ in range(spec.hot_exprs):
            pool = self.stable_vars if self.rng.random() < 0.8 else self.all_vars
            x = self.rng.choice(pool)
            y = self.rng.choice(pool)
            op = self.rng.choice(ops)
            # Extra roll only when the knob is on, so default-configured
            # specs replay the exact historical random stream.
            if spec.trapping_hot_prob > 0 and (
                self.rng.random() < spec.trapping_hot_prob
            ):
                op = self.rng.choice(list(spec.trapping_ops))
            self.hot.append((op, x, y))

        # Composite chain templates: a hot base extended link by link.
        # Guarded so default-configured specs consume no extra randomness.
        if spec.composite_exprs > 0 and self.hot:
            for _ in range(spec.composite_exprs):
                chain: list[tuple[str, str | None, str]] = [
                    self.rng.choice(self.hot)
                ]
                for _ in range(max(1, spec.composite_depth)):
                    pool = (
                        self.stable_vars
                        if self.rng.random() < 0.8
                        else self.all_vars
                    )
                    op = self.rng.choice(ops)
                    if spec.trapping_hot_prob > 0 and (
                        self.rng.random() < spec.trapping_hot_prob
                    ):
                        op = self.rng.choice(list(spec.trapping_ops))
                    chain.append((op, None, self.rng.choice(pool)))
                self.chains.append(chain)

        # Memory prologue: declare arrays, materialise one masked index
        # variable per array, and choose the recurring hot load sites.
        # Guarded so scalar-only specs consume no extra randomness.
        if spec.arrays > 0:
            self._setup_memory()

        self._region(spec.max_depth)
        if spec.max_depth > 0 and self.loop_counter == 0:
            # Guarantee substance: a program with no loop at all would be
            # a degenerate benchmark (a few dozen straight-line ops).
            self._loop(spec.max_depth - 1)

        # Epilogue: fold a few values into the return.
        acc = "ret_acc"
        b.copy(acc, 0)
        for var in self.mutable_vars[:3]:
            b.assign(acc, "xor", acc, var)
        b.ret(acc)
        return GeneratedProgram(
            func=b.build(),
            spec=spec,
            hot_expressions=list(self.hot),
            composite_chains=list(self.chains),
            hot_load_sites=list(self.hot_load_sites),
        )

    # ------------------------------------------------------------------
    def _setup_memory(self) -> None:
        spec, rng, b = self.spec, self.rng, self.builder
        for k in range(spec.arrays):
            bits = rng.randint(1, max(1, spec.array_length_bits))
            length = 1 << bits
            name = f"A{k}"
            b.array(name, length)
            # One masked index variable per array: ``and x, len-1`` is
            # in-bounds by construction, so variable-index accesses are
            # *lexically* may-trapping but never trap at runtime.
            idx_var = f"ax{k}"
            b.assign(idx_var, "and", rng.choice(self.all_vars), length - 1)
            self.all_vars.append(idx_var)
            self.stable_vars.append(idx_var)
            self.arrays_info.append((name, length, idx_var))
        for _ in range(max(1, spec.hot_loads)):
            name, length, idx_var = rng.choice(self.arrays_info)
            if spec.trapping_hot_prob > 0 and (
                rng.random() < spec.trapping_hot_prob
            ):
                # Masked variable index: a may-trap load class, forcing
                # the optimizers down the safe-speculation fallback.
                index: object = idx_var
            else:
                # Constant in-bounds index: provably non-trapping, so
                # MC-SSAPRE may speculate it freely.
                index = rng.randint(0, length - 1)
            self.hot_load_sites.append((name, index))

    # ------------------------------------------------------------------
    def _region(self, depth: int) -> None:
        spec = self.spec
        low = max(2, spec.region_length - 2)
        for _ in range(self.rng.randint(low, spec.region_length)):
            roll = self.rng.random()
            if depth > 0 and roll < spec.loop_weight:
                self._loop(depth - 1)
            elif depth > 0 and roll < spec.loop_weight + spec.branch_weight:
                self._branch(depth - 1)
            else:
                self._statement()

    def _statement(self) -> None:
        spec = self.spec
        b = self.builder
        rng = self.rng
        if rng.random() < spec.output_prob:
            b.output(rng.choice(self.all_vars))
            return
        # Composite chains roll only when the knob is on (stream-
        # preserving for every pre-existing spec).
        if self.chains and spec.composite_prob > 0 and (
            rng.random() < spec.composite_prob
        ):
            self._composite_chain()
            return
        # Memory accesses roll only when the knob is on (stream-
        # preserving for every scalar-only spec).
        if self.arrays_info and spec.mem_prob > 0 and (
            rng.random() < spec.mem_prob
        ):
            self._memory_statement()
            return
        target = rng.choice(self.mutable_vars)
        if spec.trapping_density is not None:
            # Explicit scheme: one roll, exact trapping density.
            roll = rng.random()
            hot_cut = spec.trapping_density + (
                (1.0 - spec.trapping_density) * spec.hot_prob
            )
            if roll < spec.trapping_density:
                self._trapping_statement(target)
            elif roll < hot_cut and self.hot:
                op, x, y = rng.choice(self.hot)
                b.assign(target, op, x, y)
            else:
                b.assign(target, rng.choice(spec.family_ops()),
                         rng.choice(self.all_vars), rng.choice(self.all_vars))
            return
        # Legacy two-roll scheme (canonical benchmark suite stream).
        if rng.random() < spec.hot_prob and self.hot:
            op, x, y = rng.choice(self.hot)
            b.assign(target, op, x, y)
        elif rng.random() < spec.trapping_prob:
            self._trapping_statement(target)
        else:
            b.assign(target, rng.choice(spec.family_ops()),
                     rng.choice(self.all_vars), rng.choice(self.all_vars))

    def _composite_chain(self) -> None:
        """Emit one chain template with fresh intermediates at this site.

        The per-site targets make each site's composite classes lexically
        distinct (``u = x+c`` here, ``v = y+c`` there): first-order PRE
        sees no redundancy between them until a round has rewritten the
        intermediates into shared temporaries.
        """
        rng = self.rng
        b = self.builder
        chain = rng.choice(self.chains)
        prev: str | None = None
        for op, x, y in chain:
            target = rng.choice(self.mutable_vars)
            b.assign(target, op, x if prev is None else prev, y)
            prev = target

    def _memory_statement(self) -> None:
        """Emit one load or store; every index is in-bounds by construction.

        Stores may-alias a hot load site with probability
        ``alias_density`` (killing that load class for PRE) and otherwise
        hit a random cell of a random array, which still may-alias any
        variable-index load of the same array under the conservative
        alias model.
        """
        spec, rng, b = self.spec, self.rng, self.builder
        if rng.random() < spec.store_density:
            if self.hot_load_sites and rng.random() < spec.alias_density:
                name, index = rng.choice(self.hot_load_sites)
            else:
                name, length, _ = rng.choice(self.arrays_info)
                index = rng.randint(0, length - 1)
            b.store(name, index, rng.choice(self.all_vars))
            return
        target = rng.choice(self.mutable_vars)
        if self.hot_load_sites and rng.random() < spec.hot_prob:
            name, index = rng.choice(self.hot_load_sites)
        else:
            name, length, idx_var = rng.choice(self.arrays_info)
            index = idx_var if rng.random() < 0.3 else rng.randint(0, length - 1)
        b.load(target, name, index)

    def _trapping_statement(self, target: str) -> None:
        rng = self.rng
        self.builder.assign(target, rng.choice(list(self.spec.trapping_ops)),
                            rng.choice(self.all_vars), rng.choice(self.all_vars))

    def _branch(self, depth: int) -> None:
        b = self.builder
        rng = self.rng
        cond = f"c{self.loop_counter}_{rng.randint(0, 999)}"
        b.assign(cond, rng.choice(CMP_OPS),
                 rng.choice(self.all_vars), rng.choice(self.all_vars))
        then_label = b.func.fresh_label("then")
        else_label = b.func.fresh_label("else")
        join_label = b.func.fresh_label("join")
        b.branch(cond, then_label, else_label)
        b.block(then_label)
        self._region(depth)
        b.jump(join_label)
        b.block(else_label)
        if rng.random() < 0.7:
            self._region(depth)
        b.jump(join_label)
        b.block(join_label)

    def _loop(self, depth: int) -> None:
        spec = self.spec
        b = self.builder
        rng = self.rng
        self.loop_counter += 1
        n = self.loop_counter
        i_var, bound = f"li{n}", f"lb{n}"
        mask = (1 << rng.randint(1, spec.loop_mask_bits)) - 1
        b.assign(bound, "and", rng.choice(self.all_vars), mask)
        b.assign(bound, "add", bound, rng.randint(1, spec.loop_base))
        b.copy(i_var, 0)
        head = b.func.fresh_label("head")
        body = b.func.fresh_label("body")
        exit_label = b.func.fresh_label("exit")
        cond = f"lc{n}"
        b.jump(head)
        b.block(head)
        b.assign(cond, "lt", i_var, bound)
        b.branch(cond, body, exit_label)
        b.block(body)
        # The counter and bound are readable inside the body only (their
        # definitions dominate the body but not code after an enclosing
        # branch join); they are never writable.
        self.all_vars.append(i_var)
        self.all_vars.append(bound)
        self._region(depth)
        self.all_vars.remove(i_var)
        self.all_vars.remove(bound)
        b.assign(i_var, "add", i_var, 1)
        b.jump(head)
        b.block(exit_label)


def generate_program(spec: ProgramSpec) -> GeneratedProgram:
    """Generate one deterministic program from *spec*."""
    return _Generator(spec).generate()


def random_args(spec: ProgramSpec, seed: int, low: int = 0, high: int = 1 << 16) -> list[int]:
    """Deterministic pseudo-random argument vector for a generated program."""
    rng = random.Random(f"{spec.seed}/{seed}")
    return [rng.randint(low, high) for _ in range(spec.params)]


def perturbed_args(
    spec: ProgramSpec, base: list[int], seed: int, strength: int = 7
) -> list[int]:
    """A correlated variant of *base* — the FDO "ref" input.

    Mirrors SPEC train/ref inputs: similar enough that the training profile
    predicts the reference run, different enough that they are not equal.
    Each argument receives a small additive perturbation.
    """
    rng = random.Random(f"{spec.seed}/ref/{seed}")
    return [max(0, value + rng.randint(-strength, strength)) for value in base]
