"""Compiled execution back end: one-time lowering to a flat register machine.

The reference interpreter (:mod:`repro.profiles.interp`) re-dispatches on
instruction class and re-hashes :class:`~repro.ir.values.Var` keys on every
executed statement.  Every experiment in this reproduction — the paper's
tables and figures, the ``repro.check`` oracles, the FDO train/ref runs —
bottoms out in that loop, so this module lowers a
:class:`~repro.ir.function.Function` **once** into specialised Python code
and executes that instead:

* variables are numbered into list slots — no dict hashing at run time;
* each basic block becomes one generated Python function executing its
  whole body straight-line, with operand slots and op handlers resolved
  at compile time (constants are inlined as literals);
* phis are pre-grouped per (predecessor, successor) edge and compiled
  into parallel move sequences at the end of the predecessor;
* block labels are resolved to integer indices; the run loop is
  ``e = blocks[b](regs, out)`` plus one edge-counter increment.

Profile, cost and redundancy data are *derived* rather than recorded:
each statement of a block executes exactly once per block entry, so
``dynamic_cost``, ``expr_counts`` and ``steps`` are linear functions of
the per-block execution counts, which in turn derive from per-edge
traversal counts.  The result is a :class:`~repro.profiles.interp.RunResult`
bit-identical to the reference interpreter's (same ``dynamic_cost``,
``expr_counts``, ``profile``, ``steps``, observable behaviour, and the
same :class:`~repro.profiles.interp.InterpreterError` messages), which
``tests/profiles/test_compiled.py`` pins over the generator corpus.

Reads that might observe an undefined variable are found by a
definite-assignment dataflow pass at compile time; only those reads pay a
sentinel check, so verified programs execute guard-free.

Use :data:`~repro.passes.analyses.COMPILED_ANALYSIS` (or
:func:`run_compiled` with a cache) to memoise compilation on a
pass-manager :class:`~repro.passes.cache.AnalysisCache`: the entry is
keyed by the function's code generation, so repeated runs of an
unmutated function compile exactly once.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.ir import ops as op_tables
from repro.ir.function import Function
from repro.ir.instructions import (
    Assign,
    BinOp,
    CondJump,
    Jump,
    Load,
    Output,
    Return,
    Store,
    UnaryOp,
)
from repro.ir.memory import initial_array
from repro.ir.values import Const, Operand, Var
from repro.profiles.interp import InterpreterError, RunResult
from repro.profiles.profile import ExecutionProfile

#: Default step budget, matching :func:`repro.profiles.interp.run_function`.
DEFAULT_MAX_STEPS = 2_000_000


class _Undef:
    """Sentinel filling every register slot before its first definition.

    Identity matters: the generated guards test ``value is _UNDEF``, so
    unpickling must hand back the module singleton, never a new instance
    (otherwise a persisted program would stop detecting undefined reads).
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<undef>"

    def __reduce__(self):
        return (_undef_singleton, ())


def _undef_singleton() -> "_Undef":
    return _UNDEF


_UNDEF = _Undef()


@dataclass
class CompiledProgram:
    """A function lowered to block closures over a register file."""

    name: str
    n_params: int
    #: Per parameter, the register slots its value is stored into
    #: (the versioned parameter variable and its base name, like the
    #: reference interpreter's dual ``env`` entries).
    param_slots: list[tuple[int, ...]]
    labels: list[str]
    entry_index: int
    entry_has_phis: bool
    #: One generated ``(regs, out) -> edge_id`` closure per block;
    #: returns -1 on function return.
    block_funcs: list
    #: Static edge table: traversing edge ``e`` enters block
    #: ``edge_dst[e]``; ``edge_pairs[e]`` is its (src, dst) label pair.
    edge_dst: list[int]
    edge_pairs: list[tuple[str, str]]
    #: Per block: statements executed per entry (body + terminator).
    steps_per_block: list[int]
    #: Per block: weighted dynamic cost charged per entry.
    cost_per_block: list[int]
    #: Per block: the ``class_key()`` of every operator application.
    expr_sites: list[list[tuple]]
    #: Register file template: ``_UNDEF`` everywhere except slot 0 (the
    #: return-value slot, preset to ``None`` for void returns).
    template: list = field(default_factory=list, repr=False)
    #: Declared arrays as ``(name, length, slot)``: each run materialises
    #: the deterministic initial contents into its register slot, so runs
    #: never share (and never re-observe) mutated memory.  Plain data —
    #: pickles with the artifact.
    array_slots: list = field(default_factory=list, repr=False)
    #: Generated Python source, kept for debugging, tests — and pickling:
    #: together with :attr:`op_keys` and :attr:`messages` it is enough to
    #: regenerate :attr:`block_funcs`, so programs are pickle-stable
    #: (the artifact cache of :mod:`repro.serve.store` relies on this).
    source: str = field(default="", repr=False)
    #: Operator-table keys ("b:add" / "u:neg") in ``_OPS`` index order.
    op_keys: list[str] = field(default_factory=list, repr=False)
    #: Interned error messages referenced by the generated guards.
    messages: list[str] = field(default_factory=list, repr=False)
    #: Sparse-instrumentation mode: the certified
    #: :class:`~repro.profiles.probes.placement.ProbePlacement` this
    #: program was lowered against, or ``None`` for full counting.
    #: In sparse mode the dispatch loop keeps **no** edge counters at
    #: all — each probed block's generated code increments one register
    #: (see :attr:`probe_slots`) and the full node-frequency profile is
    #: reconstructed by flow conservation after the run.  Plain data,
    #: pickles with the artifact.
    probes: object = None
    #: Per probed block: ``(label, register slot)`` of its counter.
    probe_slots: list = field(default_factory=list, repr=False)
    #: Optional live-profiling hook: called with the derived node-
    #: frequency :class:`~collections.Counter` after every successful
    #: run.  Costs one ``is not None`` test per run when unset.  The
    #: adaptation tier (:mod:`repro.serve.adapt`) attaches its fold here
    #: so block dispatch keeps feeding the live profile no matter which
    #: code path executes the program.  Never pickled: a hook is runtime
    #: wiring, not artifact content.
    profile_hook: object = field(default=None, repr=False, compare=False)

    # -- pickling ------------------------------------------------------
    # The block closures are generated code bound to op-handler defaults;
    # they cannot be pickled, but they are a pure function of (source,
    # op_keys, messages), so __setstate__ regenerates them.  Unpickled
    # programs are bit-identical in behaviour, including the identity of
    # the undefined-read sentinel (see _Undef.__reduce__).
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["block_funcs"] = None
        state["profile_hook"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.block_funcs = _exec_block_funcs(
            self.source, self.op_keys, self.messages, len(self.labels)
        )

    def run(
        self,
        args: list[int] | None = None,
        max_steps: int = DEFAULT_MAX_STEPS,
    ) -> RunResult:
        """Execute the program; mirrors ``run_function`` exactly."""
        args = args or []
        if len(args) != self.n_params:
            raise InterpreterError(
                f"{self.name} expects {self.n_params} args, got {len(args)}"
            )
        if self.entry_has_phis:
            raise InterpreterError("entry block must not contain phis")

        regs = self.template[:]
        for slots, value in zip(self.param_slots, args):
            for slot in slots:
                regs[slot] = value
        for array_name, length, slot in self.array_slots:
            regs[slot] = initial_array(array_name, length)

        out: list[int] = []
        blocks = self.block_funcs
        edge_dst = self.edge_dst
        steps_of = self.steps_per_block
        name = self.name
        steps = 0
        b = self.entry_index

        if self.probes is None:
            edge_counts = [0] * len(self.edge_dst)
            while True:
                # The whole block (body + terminator) runs or none of it
                # does, so one bounds check per block entry is exact (see
                # the same hoisting in the reference interpreter).
                steps += steps_of[b]
                if steps > max_steps:
                    raise InterpreterError(
                        f"{name}: exceeded {max_steps} interpreted steps"
                    )
                e = blocks[b](regs, out)
                if e < 0:
                    break
                edge_counts[e] += 1
                b = edge_dst[e]

            # Derive counts: every edge traversal enters its destination
            # once; the entry block is entered once more at start.
            node_counts = [0] * len(self.labels)
            node_counts[self.entry_index] = 1
            for e, count in enumerate(edge_counts):
                if count:
                    node_counts[edge_dst[e]] += count

            node_freq: Counter[str] = Counter()
            for i, count in enumerate(node_counts):
                if count:
                    node_freq[self.labels[i]] = count

            edge_freq: Counter[tuple[str, str]] = Counter()
            for e, count in enumerate(edge_counts):
                if count:
                    edge_freq[self.edge_pairs[e]] += count
            profile = ExecutionProfile(
                node_freq=node_freq, edge_freq=edge_freq
            )
        else:
            # Sparse mode: the probed blocks' generated code bumps its
            # own counter register; the loop itself counts nothing.
            while True:
                steps += steps_of[b]
                if steps > max_steps:
                    raise InterpreterError(
                        f"{name}: exceeded {max_steps} interpreted steps"
                    )
                e = blocks[b](regs, out)
                if e < 0:
                    break
                b = edge_dst[e]

            # Local import: the probes package depends on this module's
            # RunResult, so binding at call time avoids a cycle.
            from repro.profiles.probes.reconstruct import reconstruct_profile

            profile = reconstruct_profile(
                self.probes,
                {label: regs[slot] for label, slot in self.probe_slots},
                runs=1,
            )
            node_freq = profile.node_freq

        cost = 0
        expr_counts: dict[tuple, int] = {}
        for i, label in enumerate(self.labels):
            count = node_freq.get(label, 0)
            if not count:
                continue
            cost += count * self.cost_per_block[i]
            for key in self.expr_sites[i]:
                expr_counts[key] = expr_counts.get(key, 0) + count

        if self.profile_hook is not None:
            self.profile_hook(node_freq)

        return RunResult(
            return_value=regs[0],
            output=out,
            profile=profile,
            dynamic_cost=cost,
            expr_counts=expr_counts,
            steps=steps,
        )


def _resolve_op(key: str):
    """The operator handler behind a ``"b:add"`` / ``"u:neg"`` table key."""
    kind, _, name = key.partition(":")
    table = op_tables.BINARY_OPS if kind == "b" else op_tables.UNARY_OPS
    return table[name].func


def _exec_block_funcs(
    source: str,
    op_keys: list[str],
    messages: list[str],
    n_blocks: int,
    name: str = "program",
) -> list:
    """Execute generated *source* and return its block closures in order.

    Shared between first-time lowering and unpickling: the closures are a
    pure function of the generated source plus the op/message tables, so
    regenerating them after a round-trip through the artifact store
    yields behaviourally identical programs.
    """
    namespace = {
        "_OPS": [_resolve_op(key) for key in op_keys],
        "_U": _UNDEF,
        "_IE": InterpreterError,
        "_MSGS": messages,
    }
    code = compile(source, f"<compiled {name}>", "exec")
    exec(code, namespace)  # noqa: S102 - self-generated trusted source
    return [namespace[f"_b{i}"] for i in range(n_blocks)]


class _Codegen:
    """Lowers one function to Python source + metadata tables."""

    def __init__(self, func: Function, probes=None) -> None:
        self.func = func
        self.slots: dict[Var, int] = {}
        self.next_slot = 1  # slot 0 is the return-value slot
        self.op_funcs: list = []
        self.op_index: dict[str, int] = {}  # "b:add" / "u:neg" -> table idx
        self.messages: list[str] = []
        # Arrays live in dedicated register slots (a Python list each,
        # materialised per run); declared eagerly so every declared array
        # is initialised even when no instruction references it, matching
        # the reference interpreter.
        self.array_slot: dict[str, int] = {}
        for array_name in func.arrays:
            self.array_slot[array_name] = self.next_slot
            self.next_slot += 1
        # Sparse mode: one counter register per probed block, bumped by
        # the block's own generated code (zero-initialised per run via
        # the template, so runs never share counts).
        self.probes = probes
        self.probe_slot: dict[str, int] = {}
        if probes is not None:
            unknown = [v for v in probes.probes if v not in func.blocks]
            if unknown:
                raise ValueError(
                    f"placement probes {unknown!r} are not blocks of "
                    f"{func.name!r}"
                )
            for label in probes.probes:
                self.probe_slot[label] = self.next_slot
                self.next_slot += 1

    # -- tables --------------------------------------------------------
    def slot(self, var: Var) -> int:
        index = self.slots.get(var)
        if index is None:
            index = self.next_slot
            self.slots[var] = index
            self.next_slot += 1
        return index

    def op(self, kind: str, name: str) -> int:
        key = f"{kind}:{name}"
        index = self.op_index.get(key)
        if index is None:
            table = op_tables.BINARY_OPS if kind == "b" else op_tables.UNARY_OPS
            index = len(self.op_funcs)
            self.op_funcs.append(table[name].func)
            self.op_index[key] = index
        return index

    def message(self, text: str) -> int:
        self.messages.append(text)
        return len(self.messages) - 1

    # -- definite assignment ------------------------------------------
    def _definitely_assigned(self) -> dict[str, set[int] | None]:
        """Slots definitely written on every path to each block's entry.

        ``None`` means "all slots" (the top element; kept for blocks the
        dataflow never reaches, which also never execute).
        """
        func = self.func
        entry_in: set[int] = set()
        for param in func.params:
            entry_in.add(self.slot(param))
            entry_in.add(self.slot(param.base))

        defs: dict[str, set[int]] = {}
        preds: dict[str, list[str]] = {label: [] for label in func.blocks}
        for label, block in func.blocks.items():
            block_defs = set()
            for phi in block.phis:
                block_defs.add(self.slot(phi.target))
            for stmt in block.body:
                if isinstance(stmt, Assign):
                    block_defs.add(self.slot(stmt.target))
            defs[label] = block_defs
            for succ in block.terminator.successors():
                if succ in preds:
                    preds[succ].append(label)

        in_sets: dict[str, set[int] | None] = {
            label: None for label in func.blocks
        }
        in_sets[func.entry] = entry_in
        changed = True
        while changed:
            changed = False
            for label in func.blocks:
                if label == func.entry:
                    continue
                meet: set[int] | None = None
                for pred in preds[label]:
                    pred_in = in_sets[pred]
                    if pred_in is None:
                        continue
                    pred_out = pred_in | defs[pred]
                    meet = pred_out if meet is None else meet & pred_out
                if meet is not None and meet != in_sets[label]:
                    old = in_sets[label]
                    if old is None or meet != old:
                        in_sets[label] = meet
                        changed = True
        return in_sets

    # -- expression lowering ------------------------------------------
    def _read(
        self,
        operand: Operand,
        defined: set[int],
        lines: list[str],
        indent: str,
        gensym: list[int],
    ) -> str:
        """The Python expression reading *operand*; may emit guard lines."""
        if isinstance(operand, Const):
            return repr(operand.value)
        index = self.slot(operand)
        if index in defined:
            return f"r[{index}]"
        gensym[0] += 1
        temp = f"_g{gensym[0]}"
        msg = self.message(
            f"{self.func.name}: read of undefined variable {operand}"
        )
        lines.append(f"{indent}{temp} = r[{index}]")
        lines.append(f"{indent}if {temp} is _U:")
        lines.append(f"{indent}    raise _IE(_MSGS[{msg}])")
        # Past the guard this slot is proven defined on this path.
        defined.add(index)
        return temp

    def _phi_moves(
        self,
        pred_label: str,
        succ_label: str,
        defined: set[int],
        lines: list[str],
        indent: str,
        gensym: list[int],
    ) -> None:
        """Parallel phi assignment along the (pred, succ) edge."""
        phis = self.func.blocks[succ_label].phis
        if not phis:
            return
        if len(phis) == 1:
            phi = phis[0]
            expr = self._read(phi.args[pred_label], defined, lines, indent, gensym)
            lines.append(f"{indent}r[{self.slot(phi.target)}] = {expr}")
            defined.add(self.slot(phi.target))
            return
        temps = []
        for phi in phis:
            expr = self._read(phi.args[pred_label], defined, lines, indent, gensym)
            gensym[0] += 1
            temp = f"_p{gensym[0]}"
            lines.append(f"{indent}{temp} = {expr}")
            temps.append(temp)
        for phi, temp in zip(phis, temps):
            lines.append(f"{indent}r[{self.slot(phi.target)}] = {temp}")
            defined.add(self.slot(phi.target))

    def _memory_cell(
        self,
        kind: str,
        array: str,
        index: Operand,
        defined: set[int],
        lines: list[str],
        indent: str,
        gensym: list[int],
    ) -> str:
        """The Python lvalue/rvalue ``r[arr][idx]`` for a memory access.

        Emits the bounds guard matching the reference interpreter
        byte-for-byte (the ``%s`` template formats the runtime index; the
        array name and length are baked in at compile time).  A constant
        index already inside the declared bounds is proven safe here, so
        it indexes directly with no guard — the compiled twin of the
        ``load_in_bounds`` refinement the optimizers use.
        """
        aslot = self.array_slot[array]
        length = self.func.arrays[array]
        if (
            isinstance(index, Const)
            and isinstance(index.value, int)
            and not isinstance(index.value, bool)
            and 0 <= index.value < length
        ):
            return f"r[{aslot}][{index.value!r}]"
        expr = self._read(index, defined, lines, indent, gensym)
        gensym[0] += 1
        temp = f"_i{gensym[0]}"
        msg = self.message(
            f"{self.func.name}: {kind} index %s out of bounds "
            f"for array {array!r} of length {length}"
        )
        lines.append(f"{indent}{temp} = {expr}")
        lines.append(
            f"{indent}if not (isinstance({temp}, int) "
            f"and 0 <= {temp} < {length}):"
        )
        lines.append(f"{indent}    raise _IE(_MSGS[{msg}] % ({temp},))")
        return f"r[{aslot}][{temp}]"

    # -- main ----------------------------------------------------------
    def compile(self) -> CompiledProgram:
        func = self.func
        assert func.entry is not None
        labels = list(func.blocks)
        block_index = {label: i for i, label in enumerate(labels)}
        in_sets = self._definitely_assigned()

        edge_dst: list[int] = []
        edge_pairs: list[tuple[str, str]] = []
        steps_per_block: list[int] = []
        cost_per_block: list[int] = []
        expr_sites: list[list[tuple]] = []
        chunks: list[str] = []

        def new_edge(src: str, dst: str) -> int:
            edge_dst.append(block_index[dst])
            edge_pairs.append((src, dst))
            return len(edge_dst) - 1

        for i, label in enumerate(labels):
            block = func.blocks[label]
            gensym = [0]
            initial = in_sets[label]
            defined: set[int] = (
                set(self.slots.values()) if initial is None else set(initial)
            )
            cost = op_tables.PHI_COST * len(block.phis)
            sites: list[tuple] = []
            block_ops: set[int] = set()
            for phi in block.phis:
                defined.add(self.slot(phi.target))
            body: list[str] = []
            indent = "    "
            probe = self.probe_slot.get(label)
            if probe is not None:
                body.append(f"{indent}r[{probe}] += 1")

            for stmt in block.body:
                if isinstance(stmt, Assign):
                    rhs = stmt.rhs
                    if isinstance(rhs, BinOp):
                        info = op_tables.BINARY_OPS[rhs.op]
                        left = self._read(rhs.left, defined, body, indent, gensym)
                        right = self._read(rhs.right, defined, body, indent, gensym)
                        op_slot = self.op("b", rhs.op)
                        block_ops.add(op_slot)
                        handler = f"_f{op_slot}"
                        body.append(
                            f"{indent}r[{self.slot(stmt.target)}] = "
                            f"{handler}({left}, {right})"
                        )
                        cost += info.cost
                        sites.append(rhs.class_key())
                    elif isinstance(rhs, UnaryOp):
                        info = op_tables.UNARY_OPS[rhs.op]
                        operand = self._read(
                            rhs.operand, defined, body, indent, gensym
                        )
                        op_slot = self.op("u", rhs.op)
                        block_ops.add(op_slot)
                        handler = f"_f{op_slot}"
                        body.append(
                            f"{indent}r[{self.slot(stmt.target)}] = "
                            f"{handler}({operand})"
                        )
                        cost += info.cost
                        sites.append(rhs.class_key())
                    elif isinstance(rhs, Load):
                        cell = self._memory_cell(
                            "load", rhs.array, rhs.index,
                            defined, body, indent, gensym,
                        )
                        body.append(
                            f"{indent}r[{self.slot(stmt.target)}] = {cell}"
                        )
                        cost += op_tables.LOAD_COST
                        sites.append(rhs.class_key())
                    else:
                        expr = self._read(rhs, defined, body, indent, gensym)
                        body.append(
                            f"{indent}r[{self.slot(stmt.target)}] = {expr}"
                        )
                        cost += op_tables.COPY_COST
                    defined.add(self.slot(stmt.target))
                elif isinstance(stmt, Store):
                    # Mirrors the interpreter's evaluation order exactly:
                    # index read, bounds check, then the value read.
                    cell = self._memory_cell(
                        "store", stmt.array, stmt.index,
                        defined, body, indent, gensym,
                    )
                    value = self._read(stmt.value, defined, body, indent, gensym)
                    body.append(f"{indent}{cell} = {value}")
                    cost += op_tables.STORE_COST
                else:  # Output
                    expr = self._read(stmt.value, defined, body, indent, gensym)
                    body.append(f"{indent}out.append({expr})")
                    cost += op_tables.OUTPUT_COST

            term = block.terminator
            if isinstance(term, Return):
                if term.value is not None:
                    expr = self._read(term.value, defined, body, indent, gensym)
                    body.append(f"{indent}r[0] = {expr}")
                body.append(f"{indent}return -1")
            elif isinstance(term, Jump):
                self._phi_moves(label, term.target, defined, body, indent, gensym)
                body.append(f"{indent}return {new_edge(label, term.target)}")
            elif isinstance(term, CondJump):
                cost += op_tables.BRANCH_COST
                cond = self._read(term.cond, defined, body, indent, gensym)
                body.append(f"{indent}if {cond} != 0:")
                taken = set(defined)
                self._phi_moves(
                    label, term.true_target, taken, body, indent + "    ", gensym
                )
                body.append(
                    f"{indent}    return {new_edge(label, term.true_target)}"
                )
                fallthrough = set(defined)
                self._phi_moves(
                    label, term.false_target, fallthrough, body, indent, gensym
                )
                body.append(
                    f"{indent}return {new_edge(label, term.false_target)}"
                )
            else:  # pragma: no cover - verifier prevents this
                raise InterpreterError(f"unknown terminator {term!r}")

            params = "".join(f", _f{k}=_OPS[{k}]" for k in sorted(block_ops))
            chunks.append(f"def _b{i}(r, out{params}):")
            chunks.extend(body)
            chunks.append("")

            steps_per_block.append(len(block.body) + 1)
            cost_per_block.append(cost)
            expr_sites.append(sites)

        source = "\n".join(chunks)
        op_keys: list[str] = [""] * len(self.op_funcs)
        for key, index in self.op_index.items():
            op_keys[index] = key
        block_funcs = _exec_block_funcs(
            source, op_keys, self.messages, len(labels), name=func.name
        )

        template: list = [_UNDEF] * (self.next_slot)
        template[0] = None
        for slot in self.probe_slot.values():
            template[slot] = 0
        param_slots = [
            (self.slot(param), self.slot(param.base))
            if param != param.base
            else (self.slot(param),)
            for param in func.params
        ]
        return CompiledProgram(
            name=func.name,
            n_params=len(func.params),
            param_slots=param_slots,
            labels=labels,
            entry_index=block_index[func.entry],
            entry_has_phis=bool(func.blocks[func.entry].phis),
            block_funcs=block_funcs,
            edge_dst=edge_dst,
            edge_pairs=edge_pairs,
            steps_per_block=steps_per_block,
            cost_per_block=cost_per_block,
            expr_sites=expr_sites,
            template=template,
            array_slots=[
                (array_name, length, self.array_slot[array_name])
                for array_name, length in func.arrays.items()
            ],
            source=source,
            op_keys=op_keys,
            messages=self.messages,
            probes=self.probes,
            probe_slots=sorted(self.probe_slot.items(), key=lambda kv: kv[1]),
        )


def compile_function(func: Function, probes=None) -> CompiledProgram:
    """Lower *func* to a :class:`CompiledProgram` (no caching).

    With *probes* (a certified
    :class:`~repro.profiles.probes.placement.ProbePlacement` for this
    function) the program is lowered in sparse-instrumentation mode:
    only the probed blocks carry a counter increment, the dispatch loop
    drops its per-edge counting entirely, and the profile is
    reconstructed by flow conservation after each run — node
    frequencies bit-identical to full counting.
    """
    return _Codegen(func, probes).compile()


def run_compiled(
    func: Function,
    args: list[int] | None = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    *,
    cache=None,
) -> RunResult:
    """Drop-in replacement for :func:`repro.profiles.interp.run_function`.

    With a pass-manager ``cache`` (an
    :class:`~repro.passes.cache.AnalysisCache` bound to *func*), the
    lowered program is memoised under the function's code generation, so
    repeated runs — the common case in the check oracles and the FDO
    protocol — compile once.
    """
    if cache is not None:
        from repro.passes.analyses import COMPILED_ANALYSIS

        program = cache.get(COMPILED_ANALYSIS)
    else:
        program = compile_function(func)
    return program.run(args, max_steps=max_steps)
