"""Tests for the min-cut step (7) and cut-driven WillBeAvail (step 8)."""

from repro.core.mcssapre.cut import solve_min_cut
from repro.core.mcssapre.dataflow import solve_step3
from repro.core.mcssapre.efg import build_efg
from repro.core.mcssapre.reduction import build_reduced_graph
from repro.core.mcssapre.willbeavail import compute_will_be_avail_from_cut
from repro.core.ssapre.frg import ExprClass, build_frgs
from repro.profiles.profile import ExecutionProfile
from tests.conftest import as_ssa

AB = ExprClass(("add", ("var", "a"), ("var", "b")))


def cut_pipeline(func_ssa, profile, expr=AB, sink_closest=True):
    frg = build_frgs(func_ssa, [expr])[expr.key]
    solve_step3(frg)
    reduced = build_reduced_graph(frg)
    efg = build_efg(reduced, profile)
    decision = None
    if efg is not None:
        decision = solve_min_cut(efg, sink_closest=sink_closest)
    compute_will_be_avail_from_cut(frg)
    return frg, decision


class TestCutDecisions:
    def test_cheap_bottom_edge_cut(self, diamond):
        profile = ExecutionProfile(
            node_freq={"entry": 100, "left": 96, "right": 4, "join": 100}
        )
        frg, decision = cut_pipeline(as_ssa(diamond), profile)
        assert decision.cut.value == 4
        assert [o.pred for o in decision.insert_operands] == ["right"]
        assert decision.in_place_occs == []

    def test_expensive_bottom_prefers_in_place(self, diamond):
        profile = ExecutionProfile(
            node_freq={"entry": 100, "left": 10, "right": 90, "join": 100}
        )
        frg, decision = cut_pipeline(as_ssa(diamond), profile)
        # covering via 'right' costs 90; computing at join costs 100;
        # 90 still wins here.
        assert decision.cut.value == 90
        profile2 = ExecutionProfile(
            node_freq={"entry": 100, "left": 10, "right": 90, "join": 50}
        )
        frg2, decision2 = cut_pipeline(as_ssa(diamond), profile2)
        assert decision2.cut.value == 50
        assert decision2.insert_operands == []
        assert [o.label for o in decision2.in_place_occs] == ["join"]

    def test_tie_resolved_toward_sink(self, diamond):
        profile = ExecutionProfile(
            node_freq={"entry": 100, "left": 50, "right": 50, "join": 50}
        )
        frg, decision = cut_pipeline(as_ssa(diamond), profile)
        assert decision.cut.value == 50
        assert decision.insert_operands == []  # later cut = in place
        frg2, source_side = cut_pipeline(
            as_ssa(diamond), profile, sink_closest=False
        )
        assert source_side.cut.value == 50
        assert [o.pred for o in source_side.insert_operands] == ["right"]

    def test_zero_frequency_insertions_are_free(self, diamond):
        profile = ExecutionProfile(
            node_freq={"entry": 10, "left": 10, "right": 0, "join": 10}
        )
        frg, decision = cut_pipeline(as_ssa(diamond), profile)
        assert decision.cut.value == 0
        assert [o.pred for o in decision.insert_operands] == ["right"]


class TestWillBeAvailFromCut:
    def test_insert_makes_phi_available(self, diamond):
        profile = ExecutionProfile(
            node_freq={"entry": 100, "left": 96, "right": 4, "join": 100}
        )
        frg, _ = cut_pipeline(as_ssa(diamond), profile)
        assert frg.phis[0].will_be_avail

    def test_no_insert_leaves_phi_unavailable(self, diamond):
        profile = ExecutionProfile(
            node_freq={"entry": 100, "left": 10, "right": 90, "join": 50}
        )
        frg, _ = cut_pipeline(as_ssa(diamond), profile)
        assert not frg.phis[0].will_be_avail

    def test_matches_lemma8_oracle(self, while_loop):
        """After the cut, will_be_avail must equal full availability of
        the expression in the *transformed* program (Lemma 8).  We check
        it abstractly: wba(phi) iff no bottom operand chain without an
        insertion reaches the phi."""
        profile = ExecutionProfile(
            node_freq={"entry": 1, "head": 101, "body": 100, "done": 1}
        )
        frg, decision = cut_pipeline(as_ssa(while_loop), profile)
        head = frg.phi_at("head")
        assert head.will_be_avail  # insertion at entry covers the loop
        assert [o.pred for o in decision.insert_operands] == ["entry"]

    def test_avail_phis_stay_wba_without_cut(self):
        from repro.ir.builder import FunctionBuilder

        b = FunctionBuilder("f", params=["a", "b", "c"])
        b.block("entry")
        b.branch("c", "l", "r")
        b.block("l")
        b.assign("x", "add", "a", "b")
        b.jump("j")
        b.block("r")
        b.assign("y", "add", "a", "b")
        b.jump("j")
        b.block("j")
        b.assign("z", "add", "a", "b")
        b.ret("z")
        frg, decision = cut_pipeline(
            as_ssa(b.build()),
            ExecutionProfile(node_freq={"entry": 1, "l": 1, "r": 1, "j": 1}),
        )
        assert decision is None  # fully available: nothing to cut
        assert frg.phi_at("j").will_be_avail
