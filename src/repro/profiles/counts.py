"""Utilities over per-expression dynamic evaluation counts."""

from __future__ import annotations


def normalize_expr_counts(expr_counts: dict) -> dict:
    """Make SSA-destructed and non-SSA count keys comparable.

    Out-of-SSA renames ``x`` to ``x_vN``; strip the suffix so expression
    classes align across pipeline variants.  Counts of merged keys are
    summed, so two versions of one lexical class aggregate correctly.
    """
    merged: dict = {}
    for key, count in expr_counts.items():
        op = key[0]
        parts = []
        for kind, payload in key[1:]:
            if kind == "var":
                parts.append((kind, payload.split("_v")[0]))
            else:
                parts.append((kind, payload))
        merged_key = (op, *parts)
        merged[merged_key] = merged.get(merged_key, 0) + count
    return merged
