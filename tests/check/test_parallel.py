"""Process-parallel fuzzing: ``--jobs N`` must change nothing but time.

The contract: cases are deterministic in ``(seed, shape)``, shard
statistics merge commutatively, and the failing list is re-sorted into
sequential order — so a parallel run's summary is byte-identical to a
single-process run apart from ``wall_time_s`` (and the recorded ``jobs``
value itself).
"""

import json

from repro.check.cli import main
from repro.check.driver import DriverStats, run_driver
from repro.parallel import parallel_map

#: Summary fields legitimately different between job counts.
TIMING_KEYS = ("wall_time_s", "jobs")


def _mul2(x):
    return x * 2


class TestParallelMap:
    def test_preserves_order_sequential(self):
        assert parallel_map(_mul2, [3, 1, 2], jobs=1) == [6, 2, 4]

    def test_preserves_order_parallel(self):
        assert parallel_map(_mul2, list(range(7)), jobs=3) == [
            0, 2, 4, 6, 8, 10, 12,
        ]

    def test_empty(self):
        assert parallel_map(_mul2, [], jobs=4) == []


class TestDriverStatsMerge:
    def test_addition_is_commutative(self):
        a = DriverStats(
            cases=3, skipped=1,
            per_oracle={"equiv": [6, 1]}, by_kind={"divergence": 1},
        )
        b = DriverStats(
            cases=2, skipped=0,
            per_oracle={"equiv": [4, 0], "safety": [2, 0]}, by_kind={},
        )
        left = DriverStats().merge(a).merge(b).to_dict()
        right = DriverStats().merge(b).merge(a).to_dict()
        assert left == right
        assert left["cases"] == 5
        assert left["per_oracle"]["equiv"] == {"checks": 10, "failures": 1}

    def test_wall_time_not_summed(self):
        a = DriverStats(wall_time_s=1.0)
        merged = DriverStats(wall_time_s=2.0).merge(a)
        assert merged.wall_time_s == 2.0


class TestParallelDriver:
    def test_jobs2_matches_sequential(self):
        seq_stats, seq_failing = run_driver(
            4, ("cint",), ("equiv",), jobs=1
        )
        par_stats, par_failing = run_driver(
            4, ("cint",), ("equiv",), jobs=2
        )
        seq = seq_stats.to_dict()
        par = par_stats.to_dict()
        seq.pop("wall_time_s")
        par.pop("wall_time_s")
        assert par == seq
        assert [(r.seed, r.shape) for r in par_failing] == [
            (r.seed, r.shape) for r in seq_failing
        ]

    def test_cli_summary_identical_modulo_timing(self, tmp_path):
        summaries = []
        for jobs in ("1", "2"):
            out = tmp_path / f"jobs{jobs}"
            rc = main([
                "--seeds", "3", "--shape", "cint", "--oracle", "equiv",
                "--jobs", jobs, "--json", "--out", str(out),
            ])
            assert rc == 0
            data = json.loads((out / "summary.json").read_text())
            for key in TIMING_KEYS:
                data.pop(key)
            summaries.append(data)
        assert summaries[0] == summaries[1]
