"""The single compile() entry point across all variants."""

import pytest

from repro.passes import VARIANTS, CompiledFunction, build_pipeline, compile
from repro.passes.base import PassError
from repro.passes.stages import GVNPass
from repro.pipeline import prepare
from repro.profiles.interp import run_function
from tests.conftest import small_generated


def _prepared(seed=7):
    prog, train_args, ref_args = small_generated(seed)
    prepared = prepare(prog.func)
    train = run_function(prepared, train_args)
    return prepared, train, ref_args


@pytest.mark.parametrize("variant", VARIANTS)
def test_every_variant_compiles_and_preserves_semantics(variant):
    prepared, train, ref_args = _prepared()
    expected = run_function(prepared, ref_args).observable()
    compiled = compile(prepared, variant, train.profile, validate=True)
    assert isinstance(compiled, CompiledFunction)
    assert compiled.variant == variant
    assert compiled.report is not None
    assert run_function(compiled.func, ref_args).observable() == expected


def test_compile_never_mutates_its_input():
    prepared, train, _ = _prepared()
    before = prepared.statement_count()
    compile(prepared, "mc-ssapre", train.profile)
    assert prepared.statement_count() == before


def test_unknown_variant_and_missing_profile_raise():
    prepared, _, _ = _prepared()
    with pytest.raises(ValueError, match="unknown variant"):
        compile(prepared, "sspre")
    for variant in ("mc-ssapre", "mc-pre", "ispre"):
        with pytest.raises(ValueError, match="requires an execution profile"):
            compile(prepared, variant)


def test_pre_stage_reuses_construct_ssa_analyses():
    """The cache hit the refactor exists for: SSA construction computes
    the dominator tree; SSAPRE's FRG construction reuses it instead of
    recomputing."""
    prepared, train, _ = _prepared()
    report = compile(prepared, "ssapre", train.profile).report
    construct = report.execution("construct-ssa")
    pre = report.execution("ssapre")
    assert construct.cache_misses >= 3  # cfg + domtree + domfrontier
    assert pre.cache_hits >= 3
    assert pre.cache_misses == 0
    hits, misses = report.cache_counters["domtree"]
    assert misses == 1  # computed exactly once for the whole pipeline
    assert hits >= 1


def test_iterative_rounds_never_recompute_cfg_analyses():
    """The CFG-shape-preservation contract, observed through the cache:
    however many rounds the worklist engine runs, every CFG-derived
    analysis is computed at most once per function per compile."""
    prepared, train, _ = _prepared()
    report = compile(prepared, "mc-ssapre", train.profile, rounds=4).report
    assert report.execution("mc-ssapre-iter").payload.rounds_run >= 1
    for analysis in ("cfg", "domtree", "domfrontier"):
        _, misses = report.cache_counters[analysis]
        assert misses <= 1, analysis


def test_iterative_rounds_appear_in_report_dict():
    prepared, train, _ = _prepared()
    report = compile(prepared, "mc-ssapre", train.profile, rounds=4).report
    entry = next(
        p for p in report.to_dict()["passes"]
        if p["pass"] == "mc-ssapre-iter"
    )
    payload = entry["payload"]
    assert payload["rounds"][0]["round"] == 1
    assert {"classes", "changed", "insertions", "reloads"} <= set(
        payload["rounds"][0]
    )
    assert isinstance(payload["fixpoint"], bool)


def test_pure_pre_noop_skips_generation_bump():
    """A PRE stage that changes no class must not invalidate the
    code-generation-keyed analyses (the mutated() hook)."""
    from repro.ir.builder import FunctionBuilder
    from repro.passes import PassManager
    from repro.passes.stages import MCSSAPREPass
    from tests.conftest import as_ssa

    b = FunctionBuilder("clean", params=["a", "b"])
    b.block("entry")
    b.assign("x", "add", "a", "b")
    b.ret("x")
    func = b.build()
    profile = run_function(func, [1, 2]).profile
    func = as_ssa(func)
    before = func.code_generation
    report = PassManager().run(
        func, [MCSSAPREPass(rounds=4)], profile=profile, variant="unit"
    )
    assert report.execution("mc-ssapre-iter").payload.classes_changed == 0
    assert func.code_generation == before


def test_clone_time_is_recorded():
    prepared, train, _ = _prepared()
    report = compile(prepared, "ssapre", train.profile).report
    assert report.clone_time > 0
    assert report.total_time >= report.clone_time


def test_pipeline_spec_override_runs_custom_stages():
    prepared, train, ref_args = _prepared()
    expected = run_function(prepared, ref_args).observable()
    compiled = compile(
        prepared,
        "ssapre",
        train.profile,
        pipeline_spec=[
            "construct-ssa", GVNPass(), "ssapre", "dce", "destruct-ssa",
        ],
    )
    names = [ex.name for ex in compiled.report.executions]
    assert names == ["construct-ssa", "gvn", "ssapre", "dce", "destruct-ssa"]
    assert run_function(compiled.func, ref_args).observable() == expected
    assert compiled.pre_result is not None


def test_unknown_stage_name_raises():
    prepared, _, _ = _prepared()
    with pytest.raises(PassError, match="unknown pipeline stage"):
        compile(prepared, "ssapre", pipeline_spec=["construct-ssa", "pre"])


def test_build_pipeline_shapes():
    assert build_pipeline("none") == []
    assert [p.name for p in build_pipeline("lcm")] == ["lcm"]
    assert [p.name for p in build_pipeline("ssapre")] == [
        "construct-ssa", "ssapre", "destruct-ssa",
    ]
    assert [p.name for p in build_pipeline(
        "mc-ssapre", fold_constants=True, cleanup=True
    )] == [
        "construct-ssa", "sccp", "mc-ssapre", "copyprop", "dce",
        "destruct-ssa",
    ]
    with pytest.raises(ValueError):
        build_pipeline("nope")


def test_verify_each_end_to_end():
    prepared, train, _ = _prepared()
    compiled = compile(
        prepared, "mc-ssapre", train.profile, verify_each=True
    )
    assert compiled.report.verified
