"""SSAPRE drivers: safe PRE (compile A) and loop-speculative PRE (B).

`run_ssapre` processes every candidate expression class of a function —
rank-ordered over the shared occurrence index (see
:mod:`repro.core.occurrences`) — rebuilding the FRG for each class on
the current (already partially transformed) function, exactly as a
phased compiler pass would.  Each class goes through:

    Φ-Insertion → Rename → DownSafety [→ loop speculation] →
    WillBeAvail → Finalize → CodeMotion

With ``rounds > 1`` the whole sequence becomes one round of the
:mod:`repro.core.worklist` engine, which feeds CodeMotion's statement
deltas back into the occurrence index and re-runs the newly-exposed
higher-rank classes (second-order redundancy) until fixpoint.

Returns a report per class so benchmarks can count insertions/reloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis import loop_forest_of
from repro.analysis.dataflow import PREDataflow, solve_pre_dataflow
from repro.analysis.loops import LoopForest
from repro.core.ssapre.codemotion import CodeMotionReport, apply_code_motion
from repro.core.worklist import RoundStats, run_rounds

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.passes.cache import AnalysisCache
from repro.core.ssapre.downsafety import (
    compute_down_safety,
    compute_down_safety_sparse,
)
from repro.core.ssapre.finalize import finalize
from repro.core.ssapre.frg import FRG, ExprClass, build_frgs
from repro.core.ssapre.speculation import apply_loop_speculation
from repro.core.ssapre.willbeavail import compute_will_be_avail
from repro.ir.function import Function
from repro.ir.verifier import has_critical_edges
from repro.ssa.ssa_verifier import verify_ssa


@dataclass
class PREResult:
    """Aggregate outcome of a PRE run over a whole function."""

    algorithm: str
    reports: list[CodeMotionReport] = field(default_factory=list)
    speculated_phis: int = 0
    round_stats: list[RoundStats] = field(default_factory=list)
    fixpoint: bool = True

    @property
    def total_insertions(self) -> int:
        return sum(r.insertions for r in self.reports)

    @property
    def total_reloads(self) -> int:
        return sum(r.reloads for r in self.reports)

    @property
    def classes_changed(self) -> int:
        return sum(1 for r in self.reports if r.changed)

    @property
    def rounds_run(self) -> int:
        return len(self.round_stats)


def run_safe_steps(
    frg: FRG,
    *,
    dataflow: PREDataflow | None = None,
    forest: LoopForest | None = None,
) -> int:
    """The per-class safe-PRE step sequence shared by both drivers.

    DownSafety (oracle when *dataflow* is given, sparse otherwise),
    optional loop speculation when a *forest* is supplied, then
    WillBeAvail.  Returns the number of phis speculation promoted.  The
    MC driver routes trapping expressions through exactly this sequence,
    so the fallback is the safe algorithm by construction, not a copy.
    """
    if dataflow is not None:
        compute_down_safety(frg, dataflow)
    else:
        compute_down_safety_sparse(frg)
    speculated = 0
    if forest is not None:
        speculated = apply_loop_speculation(frg, forest)
    compute_will_be_avail(frg)
    return speculated


def run_ssapre(
    func: Function,
    speculate_loops: bool = False,
    validate: bool = False,
    classes: list[ExprClass] | None = None,
    down_safety: str = "oracle",
    cache: "AnalysisCache | None" = None,
    rounds: int = 1,
) -> PREResult:
    """Run safe SSAPRE (or SSAPREsp when ``speculate_loops``) in place.

    ``down_safety`` selects the DownSafety implementation: ``"oracle"``
    (exact, bit-vector anticipability) or ``"sparse"`` (Kennedy's
    rename-driven propagation; conservative, never unsafe).  CFG-derived
    analyses (dominators, frontiers, loops) come from *cache* when given.
    ``rounds`` bounds the iterative worklist: 1 (default) is the classic
    one-shot driver; more rounds chase second-order redundancy exposed
    by earlier code motion.
    """
    if down_safety not in ("oracle", "sparse"):
        raise ValueError(f"unknown down_safety mode {down_safety!r}")
    if has_critical_edges(func):
        raise ValueError(
            "SSAPRE requires critical edges to be split first "
            "(use repro.ir.transforms.split_critical_edges)"
        )
    from repro.passes.cache import AnalysisCache

    cache = AnalysisCache.ensure(func, cache)
    result = PREResult(algorithm="SSAPREsp" if speculate_loops else "SSAPRE")

    def process_round(
        fn: Function, work: list[ExprClass]
    ) -> list[CodeMotionReport]:
        # One shared rename walk and one shared bit-vector solve cover
        # every class of the round: CodeMotion only replaces statements
        # of the class it is processing and introduces fresh
        # temporaries, so neither the other classes' FRGs nor their
        # data-flow facts are invalidated.
        frgs = build_frgs(fn, work, cache=cache)
        dataflow = None
        if down_safety == "oracle":
            dataflow = solve_pre_dataflow(fn, [expr.key for expr in work])
        forest = loop_forest_of(fn, cache) if speculate_loops else None

        reports = []
        for expr in work:
            frg = frgs[expr.key]
            if not frg.real_occs:
                continue
            result.speculated_phis += run_safe_steps(
                frg, dataflow=dataflow, forest=forest
            )
            plan = finalize(frg)
            report = apply_code_motion(fn, plan)
            reports.append(report)
            if validate and report.changed:
                verify_ssa(fn)
        return reports

    run_rounds(
        func, result, process_round,
        classes=classes, rounds=rounds, validate=validate,
    )
    return result
