"""Tests for the optional SCCP / cleanup passes in the pipeline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import ProgramSpec, generate_program, random_args
from repro.pipeline import compile_variant, prepare
from repro.profiles.interp import run_function


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=40_000), st.booleans(), st.booleans())
def test_passes_preserve_semantics(seed, fold, cleanup):
    spec = ProgramSpec(name="pp", seed=seed, max_depth=2)
    prog = generate_program(spec)
    prepared = prepare(prog.func)
    args = random_args(spec, 1)
    train = run_function(prepared, args)
    compiled = compile_variant(
        prepared,
        "mc-ssapre",
        profile=train.profile,
        validate=True,
        fold_constants=fold,
        cleanup=cleanup,
    )
    after = run_function(compiled.func, args)
    assert after.observable() == train.observable()


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=40_000))
def test_full_pipeline_never_slower(seed):
    """SCCP + MC-SSAPRE + cleanup vs plain MC-SSAPRE, matching profile."""
    spec = ProgramSpec(name="pf", seed=seed, max_depth=2)
    prog = generate_program(spec)
    prepared = prepare(prog.func)
    args = random_args(spec, 1)
    train = run_function(prepared, args)
    plain = compile_variant(prepared, "mc-ssapre", profile=train.profile)
    tuned = compile_variant(
        prepared,
        "mc-ssapre",
        profile=train.profile,
        fold_constants=True,
        cleanup=True,
    )
    plain_cost = run_function(plain.func, args).dynamic_cost
    tuned_cost = run_function(tuned.func, args).dynamic_cost
    assert tuned_cost <= plain_cost


def test_cleanup_removes_copies(while_loop):
    from repro.ir.instructions import Assign

    prepared = prepare(while_loop)
    train = run_function(prepared, [2, 3, 10])

    def copy_count(func):
        return sum(
            1
            for block in func
            for stmt in block.body
            if isinstance(stmt, Assign) and stmt.is_copy
        )

    plain = compile_variant(prepared, "mc-ssapre", profile=train.profile)
    cleaned = compile_variant(
        prepared, "mc-ssapre", profile=train.profile, cleanup=True
    )
    assert copy_count(cleaned.func) <= copy_count(plain.func)
