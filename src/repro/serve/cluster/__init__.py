"""Sharded serving cluster: TCP front end, hash ring, worker pool.

The cluster tier scales :class:`repro.serve.server.CompileService`
across processes (docs/SERVING.md, "Cluster"):

* :mod:`repro.serve.cluster.ring` — consistent-hash routing so each
  structural key has one owning worker and ring changes remap ~1/N of
  the key space;
* :mod:`repro.serve.cluster.locks` — ``flock``-based per-key build
  locks extending single-flight across processes;
* :mod:`repro.serve.cluster.worker` — worker subprocess lifecycle
  (spawn, health check, restart on crash);
* :mod:`repro.serve.cluster.frontend` — the asyncio TCP front end and
  the :class:`Cluster` orchestrator.
"""

from repro.serve.cluster.frontend import Cluster, race_cold_key
from repro.serve.cluster.locks import FileLock, KeyLockManager
from repro.serve.cluster.ring import HashRing
from repro.serve.cluster.worker import WorkerHandle

__all__ = [
    "Cluster",
    "FileLock",
    "HashRing",
    "KeyLockManager",
    "WorkerHandle",
    "race_cold_key",
]
