"""Tests for the random program generator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import (
    ProgramSpec,
    generate_program,
    perturbed_args,
    random_args,
)
from repro.ir.verifier import verify_function
from repro.profiles.interp import run_function


class TestDeterminism:
    def test_same_seed_same_program(self):
        spec = ProgramSpec(name="d", seed=42)
        one = generate_program(spec).func
        two = generate_program(spec).func
        assert str(one) == str(two)

    def test_different_seeds_differ(self):
        one = generate_program(ProgramSpec(name="d", seed=1)).func
        two = generate_program(ProgramSpec(name="d", seed=2)).func
        assert str(one) != str(two)

    def test_args_deterministic(self):
        spec = ProgramSpec(name="d", seed=7)
        assert random_args(spec, 1) == random_args(spec, 1)
        assert random_args(spec, 1) != random_args(spec, 2)

    def test_perturbed_args_close_to_base(self):
        spec = ProgramSpec(name="d", seed=7)
        base = random_args(spec, 1)
        ref = perturbed_args(spec, base, 2, strength=5)
        assert len(ref) == len(base)
        assert all(abs(r - b) <= 5 for r, b in zip(ref, base))
        assert all(r >= 0 for r in ref)


class TestWellFormedness:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=200_000), st.booleans())
    def test_generated_programs_verify_and_terminate(self, seed, fp):
        spec = ProgramSpec(name="w", seed=seed, max_depth=3, fp_flavor=fp)
        prog = generate_program(spec)
        verify_function(prog.func)
        for argseed in (1, 2):
            run = run_function(
                prog.func, random_args(spec, argseed), max_steps=3_000_000
            )
            assert run.steps > 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=50_000))
    def test_loop_counters_never_written_by_body(self, seed):
        """Termination guarantee: li*/lb* only written by the loop scaffold."""
        from repro.ir.instructions import Assign, BinOp

        spec = ProgramSpec(name="w", seed=seed, max_depth=3)
        prog = generate_program(spec)
        for block in prog.func:
            for stmt in block.body:
                if isinstance(stmt, Assign) and stmt.target.name.startswith("li"):
                    # only the increment and the init write the counter
                    if isinstance(stmt.rhs, BinOp):
                        assert stmt.rhs.op == "add"
                        assert stmt.rhs.right.value == 1

    def test_hot_expressions_recur(self):
        spec = ProgramSpec(name="hot", seed=3, hot_prob=0.9, max_depth=2)
        prog = generate_program(spec)
        from repro.analysis.dataflow import expression_keys

        keys = expression_keys(prog.func)
        assert prog.hot_expressions
        # At least one hot expression appears as a class.
        hot_keys = {
            (op, ("var", x), ("var", y)) for op, x, y in prog.hot_expressions
        }
        assert hot_keys & set(keys)


class TestProfiles:
    def test_different_inputs_different_profiles(self):
        # Probe a few seeds: at least one pair of inputs must steer the
        # program differently (data-dependent control flow).
        for seed in range(11, 17):
            spec = ProgramSpec(name="p", seed=seed, max_depth=2)
            prog = generate_program(spec)
            one = run_function(prog.func, random_args(spec, 1)).profile
            two = run_function(prog.func, random_args(spec, 9)).profile
            if one.node_freq != two.node_freq:
                return
        raise AssertionError("no input-dependent control flow found")

    def test_profile_flow_conservation(self):
        spec = ProgramSpec(name="p", seed=11, max_depth=2)
        prog = generate_program(spec)
        run = run_function(prog.func, random_args(spec, 1))
        assert run.profile.check_flow_conservation(prog.func.entry) == []
