"""Tests for the fluent function builder."""

import pytest

from repro.ir.builder import FunctionBuilder, as_operand, as_var
from repro.ir.instructions import Assign, BinOp, CondJump, Jump, Return, UnaryOp
from repro.ir.values import Const, Var


class TestCoercions:
    def test_as_operand(self):
        assert as_operand(3) == Const(3)
        assert as_operand(True) == Const(1)
        assert as_operand("x") == Var("x")
        assert as_operand(Var("y", 2)) == Var("y", 2)
        assert as_operand(Const(0)) == Const(0)

    def test_as_operand_rejects_junk(self):
        with pytest.raises(TypeError):
            as_operand(3.5)

    def test_as_var(self):
        assert as_var("x") == Var("x")
        with pytest.raises(TypeError):
            as_var(3)


class TestStatementBuilding:
    def test_binary_assign(self):
        b = FunctionBuilder("f", params=["a"])
        b.block("entry")
        b.assign("x", "add", "a", 1)
        b.ret("x")
        stmt = b.build().blocks["entry"].body[0]
        assert isinstance(stmt.rhs, BinOp)
        assert stmt.rhs.op == "add"

    def test_unary_assign(self):
        b = FunctionBuilder("f", params=["a"])
        b.block("entry")
        b.assign("x", "neg", "a")
        b.ret("x")
        stmt = b.build().blocks["entry"].body[0]
        assert isinstance(stmt.rhs, UnaryOp)

    def test_wrong_arity_rejected(self):
        b = FunctionBuilder("f", params=["a"])
        b.block("entry")
        with pytest.raises(ValueError):
            b.assign("x", "add", "a")
        with pytest.raises(ValueError):
            b.assign("x", "neg", "a", "a")

    def test_unknown_op_rejected(self):
        b = FunctionBuilder("f")
        b.block("entry")
        with pytest.raises(ValueError):
            b.assign("x", "bogus", 1, 2)

    def test_copy(self):
        b = FunctionBuilder("f")
        b.block("entry")
        b.copy("x", 5)
        stmt = b.func.blocks["entry"].body[0]
        assert isinstance(stmt, Assign) and stmt.is_copy

    def test_phi(self):
        b = FunctionBuilder("f")
        b.block("entry")
        b.phi(Var("x", 3), p1=Var("x", 1), p2=Var("x", 2))
        phi = b.func.blocks["entry"].phis[0]
        assert phi.args == {"p1": Var("x", 1), "p2": Var("x", 2)}

    def test_statement_without_block_raises(self):
        b = FunctionBuilder("f")
        with pytest.raises(ValueError):
            b.copy("x", 1)


class TestBlocksAndTerminators:
    def test_declare_then_fill(self):
        b = FunctionBuilder("f", params=["c"])
        b.block("entry")
        b.declare("later")
        b.branch("c", "later", "later")
        b.block("later")
        b.ret()
        func = b.build()
        assert isinstance(func.blocks["entry"].terminator, CondJump)
        assert isinstance(func.blocks["later"].terminator, Return)

    def test_block_switches_current(self):
        b = FunctionBuilder("f")
        b.block("a")
        b.jump("b")
        b.block("b")
        b.ret()
        b.block("a")  # switch back
        assert b.current.label == "a"

    def test_jump_and_ret(self):
        b = FunctionBuilder("f", params=["x"])
        b.block("entry")
        b.jump("end")
        b.block("end")
        b.ret("x")
        func = b.build()
        assert isinstance(func.blocks["entry"].terminator, Jump)
        term = func.blocks["end"].terminator
        assert isinstance(term, Return) and term.value == Var("x")
