"""Tests for the `python -m repro.bench` command-line interface."""

import pytest

from repro.bench.cli import main


def run_cli(capsys, *argv) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestCLI:
    def test_table1_subset(self, capsys):
        out = run_cli(capsys, "table1", "--benchmarks", "mcf,sjeng")
        assert "Table 1" in out
        assert "mcf" in out and "sjeng" in out
        assert "Average" in out

    def test_fig9_subset(self, capsys):
        out = run_cli(capsys, "fig9", "--benchmarks", "mcf")
        assert "Figure 9" in out
        assert "normalised" in out

    def test_fig11_subset(self, capsys):
        out = run_cli(capsys, "fig11", "--benchmarks", "mcf,milc")
        assert "EFG size distribution" in out
        assert "min size: 4" in out

    def test_sec4_subset(self, capsys):
        out = run_cli(capsys, "sec4", "--benchmarks", "sjeng")
        assert "flow-network sizes" in out
        assert "sjeng" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1", "--benchmarks", "doom3"])

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["table7"])
