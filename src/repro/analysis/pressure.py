"""Register-pressure estimation.

The paper motivates lifetime optimality with register pressure: longer
temporary live ranges can force spills that negate PRE's benefit (its
critique of Scholz et al., Section 2).  This module measures the proxy a
register allocator would care about: the maximum number of simultaneously
live variables at any program point, computed by walking each block
backward from its live-out set.

Used by the lifetime ablation benchmark to show that the reverse-labeling
cut's shorter temporary lifetimes translate into lower peak pressure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.liveness import compute_liveness
from repro.ir.function import Function
from repro.ir.instructions import Assign
from repro.ir.values import Var


@dataclass
class PressureReport:
    """Peak and per-block register pressure."""

    peak: int
    peak_label: str
    per_block: dict[str, int]
    #: pressure attributable to PRE temporaries at the overall peak point
    temps_at_peak: int

    def weighted_sum(self, node_freq: dict[str, int]) -> int:
        """Profile-weighted pressure (hot blocks matter more)."""
        return sum(
            self.per_block[label] * node_freq.get(label, 0)
            for label in self.per_block
        )


def _var_key(var: Var, by_version: bool):
    return (var.name, var.version) if by_version else var.name


def measure_pressure(
    func: Function, by_version: bool = True, temp_prefix: str = "%pre"
) -> PressureReport:
    """Compute per-block maximum pressure by backward scan.

    Works on SSA (default, version-exact) and non-SSA functions.  Phi
    targets are defined at block entry; phi arguments count as live-out of
    the predecessors and are already included in ``liveness.live_out``.
    """
    liveness = compute_liveness(func, by_version=by_version)
    per_block: dict[str, int] = {}
    peak = -1
    peak_label = ""
    temps_at_peak = 0

    for label, block in func.blocks.items():
        if label not in liveness.live_out:
            continue
        live = set(liveness.live_out[label])
        best = len(live)
        best_set = set(live)
        for stmt in reversed(block.body):
            if isinstance(stmt, Assign):
                live.discard(_var_key(stmt.target, by_version))
            for operand in stmt.used_operands():
                if isinstance(operand, Var):
                    live.add(_var_key(operand, by_version))
            if len(live) > best:
                best = len(live)
                best_set = set(live)
        for operand in block.terminator.used_operands():
            if isinstance(operand, Var):
                live.add(_var_key(operand, by_version))
                if len(live) > best:
                    best = len(live)
                    best_set = set(live)
        # Phi targets are all simultaneously live at the block head.
        head = set(live)
        for phi in block.phis:
            head.add(_var_key(phi.target, by_version))
        if len(head) > best:
            best = len(head)
            best_set = head
        per_block[label] = best
        if best > peak:
            peak = best
            peak_label = label
            temps_at_peak = sum(
                1
                for key in best_set
                if (key[0] if by_version else key).startswith(temp_prefix)
            )
    return PressureReport(
        peak=max(peak, 0),
        peak_label=peak_label,
        per_block=per_block,
        temps_at_peak=temps_at_peak,
    )
