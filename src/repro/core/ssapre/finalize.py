"""SSAPRE step 5 — Finalize.

Given a FRG whose Φs carry ``will_be_avail`` and whose operands carry
``insert`` (whether produced by safe WillBeAvail or by MC-SSAPRE's
min-cut), decide the concrete form of the optimized code:

* which real occurrences are **reloads** (deleted, replaced by a use of
  the PRE temporary ``t``),
* which are **saves** (kept, with their value additionally stored to ``t``
  because somebody reloads it later),
* where **insertions** of the computation go (ends of predecessor blocks
  of Φ operands flagged ``insert``),
* which Φs materialise as real phis of ``t``, with extraneous ones
  (never used) removed so ``t`` is in minimal SSA form — this removal is
  part of SSAPRE's lifetime optimality.

Reload sources are resolved by chasing FRG def links, which is
version-exact: an occurrence may only reload a value carrying *its own*
``h`` version — either the ``t``-phi of the Φ that defines the version
(when that Φ is will-be-avail) or the nearest dominating real occurrence
of the same version (which is then marked as a save).  A mere dominating
definition of a *different* version is a different value and never
acceptable.

The output is a :class:`FinalizePlan`, a pure decision object that
CodeMotion then applies to the function.  Keeping it side-effect free
lets the optimality and lifetime tests inspect plans directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.core.ssapre.frg import FRG, PhiNode, RealOcc
from repro.ir.values import Operand


@dataclass(eq=False)
class InsertNode:
    """A computation of the expression inserted at the end of *pred*."""

    pred: str
    operand_values: tuple[Operand, ...]

    def __repr__(self) -> str:
        vals = ", ".join(str(v) for v in self.operand_values)
        return f"InsertNode({vals} at end of {self.pred})"


#: Anything that can define a value of the PRE temporary.
TDef = Union[PhiNode, RealOcc, InsertNode]


@dataclass
class FinalizePlan:
    """All decisions needed by CodeMotion for one expression class."""

    frg: FRG
    #: Real occurrences to replace by a use of t; maps to their t-def.
    reloads: dict[int, TDef] = field(default_factory=dict)  # id(RealOcc) keys
    #: Real occurrences whose value must be saved into t.
    saves: list[RealOcc] = field(default_factory=list)
    #: Insertions, keyed by the Φ operand they feed.
    insertions: dict[int, InsertNode] = field(default_factory=dict)  # id(PhiOperand)
    #: Materialised phis of t and their per-operand t-defs.
    t_phis: list[PhiNode] = field(default_factory=list)
    t_phi_args: dict[int, dict[str, TDef]] = field(default_factory=dict)  # id(PhiNode)
    #: Reverse index for tests/benchmarks.
    occ_reload: list[RealOcc] = field(default_factory=list)

    def is_reload(self, occ: RealOcc) -> bool:
        return id(occ) in self.reloads

    def insertion_count(self) -> int:
        return len(self.insertions)

    def has_effect(self) -> bool:
        """Does applying this plan change the function at all?"""
        return bool(self.reloads or self.insertions)


def finalize(frg: FRG) -> FinalizePlan:
    """Turn will_be_avail / insert flags into a concrete rewrite plan."""
    plan = FinalizePlan(frg=frg)

    def carrier(occ: RealOcc) -> TDef:
        """The t-definition holding *occ*'s value at and after *occ*.

        Chases the version's definition: if a dominating real occurrence
        of the same version exists, the value comes from there (that
        occurrence computes, or itself reloads); otherwise from the
        defining Φ's t-phi when available; otherwise *occ* computes in
        place and is the carrier itself.
        """
        if occ.crossing_real is not None and occ.crossing_real is not occ:
            return carrier(occ.crossing_real)
        definition = occ.def_node
        if isinstance(definition, RealOcc):
            return carrier(definition)
        if isinstance(definition, PhiNode) and definition.will_be_avail:
            return definition
        return occ

    # 1. Reload / compute-in-place decisions for every real occurrence.
    for occ in frg.real_occs:
        if occ.def_node is None and occ.crossing_real is None:
            continue  # defines its own version: computes in place
        source = carrier(occ)
        if source is occ:
            continue  # its Φ is not will-be-avail: computes in place
        plan.reloads[id(occ)] = source
        plan.occ_reload.append(occ)

    # 2. Operand definitions for will-be-avail Φs.
    for phi in frg.phis:
        if not phi.will_be_avail:
            continue
        args: dict[str, TDef] = {}
        for operand in phi.operands:
            if operand.insert:
                values = tuple(operand.operand_values)
                assert all(v is not None for v in values), (
                    f"insertion at {operand.pred!r} for {frg.expr} "
                    "references an undefined operand"
                )
                node = InsertNode(pred=operand.pred, operand_values=values)
                plan.insertions[id(operand)] = node
                args[operand.pred] = node
            elif operand.has_real_use:
                assert operand.crossing_real is not None
                args[operand.pred] = carrier(operand.crossing_real)
            else:
                definition = operand.def_node
                assert isinstance(definition, PhiNode) and definition.will_be_avail, (
                    f"will_be_avail Φ at {phi.label!r} has operand from "
                    f"{operand.pred!r} with no insertion and no available "
                    f"definition ({definition!r})"
                )
                args[operand.pred] = definition
        plan.t_phi_args[id(phi)] = args

    _remove_extraneous_phis(plan)
    _collect_saves(plan)
    return plan


def _remove_extraneous_phis(plan: FinalizePlan) -> None:
    """Drop will-be-avail Φs whose value is never used (minimal SSA for t).

    A Φ is useful when a reload takes its value, or when a useful Φ takes
    it as an operand.  Everything else — including its operand insertions —
    is discarded, which matters for lifetime optimality: an insertion
    feeding only a dead phi would compute a value nobody reads.
    """
    frg = plan.frg
    useful: set[int] = set()
    worklist: list[PhiNode] = []

    def mark(definition: TDef) -> None:
        if isinstance(definition, PhiNode) and id(definition) not in useful:
            useful.add(id(definition))
            worklist.append(definition)

    for definition in plan.reloads.values():
        mark(definition)
    while worklist:
        phi = worklist.pop()
        for definition in plan.t_phi_args.get(id(phi), {}).values():
            mark(definition)

    plan.t_phis = [
        phi for phi in frg.phis if phi.will_be_avail and id(phi) in useful
    ]
    keep_phi_ids = {id(phi) for phi in plan.t_phis}
    plan.t_phi_args = {
        phi_id: args
        for phi_id, args in plan.t_phi_args.items()
        if phi_id in keep_phi_ids
    }
    live_inserts: set[int] = set()
    for args in plan.t_phi_args.values():
        for definition in args.values():
            if isinstance(definition, InsertNode):
                live_inserts.add(id(definition))
    plan.insertions = {
        op_id: node
        for op_id, node in plan.insertions.items()
        if id(node) in live_inserts
    }


def _collect_saves(plan: FinalizePlan) -> None:
    """A real occurrence saves iff a surviving reload or t-phi reads it."""
    needed: list[RealOcc] = []
    seen: set[int] = set()

    def note(definition) -> None:
        if isinstance(definition, RealOcc) and id(definition) not in seen:
            seen.add(id(definition))
            needed.append(definition)

    for definition in plan.reloads.values():
        note(definition)
    for args in plan.t_phi_args.values():
        for definition in args.values():
            note(definition)
    plan.saves = needed
    for occ in plan.frg.real_occs:
        occ.save = id(occ) in seen
        occ.reload = id(occ) in plan.reloads
