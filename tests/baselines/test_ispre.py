"""Tests for the ISPRE heuristic baseline."""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ispre import hot_region, run_ispre
from repro.bench.generator import ProgramSpec, generate_program, random_args
from repro.pipeline import prepare
from repro.profiles.interp import run_function
from repro.profiles.profile import ExecutionProfile


class TestHotRegion:
    def test_threshold_selects_hot_blocks(self, while_loop):
        run = run_function(copy.deepcopy(while_loop), [1, 2, 20])
        hot = hot_region(while_loop, run.profile, theta=0.5)
        assert "head" in hot and "body" in hot
        assert "entry" not in hot and "done" not in hot

    def test_theta_one_selects_only_peak(self, while_loop):
        run = run_function(copy.deepcopy(while_loop), [1, 2, 20])
        hot = hot_region(while_loop, run.profile, theta=1.0)
        assert hot == {"head"}

    def test_empty_profile_gives_empty_region(self, while_loop):
        assert hot_region(while_loop, ExecutionProfile(), theta=0.5) == set()


class TestISPRE:
    def test_rejects_ssa(self, diamond):
        from repro.ssa.construct import construct_ssa

        construct_ssa(diamond)
        with pytest.raises(ValueError):
            run_ispre(diamond, ExecutionProfile())

    def test_hoists_invariant_out_of_hot_loop(self, while_loop):
        from repro.ir.transforms import split_critical_edges

        split_critical_edges(while_loop)
        run = run_function(copy.deepcopy(while_loop), [2, 3, 30])
        result = run_ispre(while_loop, run.profile, validate=True)
        after = run_function(while_loop, [2, 3, 30])
        ab = ("add", ("var", "a"), ("var", "b"))
        assert after.expr_counts[ab] == 1
        assert after.observable() == run.observable()
        assert result.insertions >= 1

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_semantics_preserved_on_random_programs(self, seed):
        spec = ProgramSpec(name="isp", seed=seed, max_depth=2)
        prog = generate_program(spec)
        prepared = prepare(prog.func)
        args = random_args(spec, 1)
        run = run_function(prepared, args)
        work = copy.deepcopy(prepared)
        run_ispre(work, run.profile, validate=True)
        after = run_function(work, args)
        assert after.observable() == run.observable()

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_never_beats_the_optimum(self, seed):
        """ISPRE is a heuristic: it can only tie or lose against
        MC-SSAPRE under a matching profile."""
        from repro.pipeline import run_experiment

        spec = ProgramSpec(name="h", seed=seed, max_depth=2)
        prog = generate_program(spec)
        args = random_args(spec, 1)
        experiment = run_experiment(
            prog.func, args, args, variants=("mc-ssapre", "ispre")
        )
        assert experiment.cost("mc-ssapre") <= experiment.cost("ispre")
