"""The sharded serving cluster, end to end: routing, merged metrics,
cold-key races, worker crash recovery.

One two-worker cluster is shared module-wide (each worker is a real
``python -m repro.serve serve`` process, so spawning is the expensive
part); the crash-recovery test runs last in file order because it
restarts a worker.
"""

import time

import pytest

from repro.pipeline import PipelineConfig, prepare
from repro.lang.parser import parse_function
from repro.profiles.interp import run_function
from repro.serve.cluster import Cluster, race_cold_key
from repro.serve.keys import structural_key
from repro.serve.loadgen import TCPServiceClient
from repro.serve.metrics import METRICS_SCHEMA
from repro.serve.server import CompileRequest

from tests.conftest import build_diamond


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    root = tmp_path_factory.mktemp("cluster")
    with Cluster(
        2,
        cache_dir=str(root / "cache"),
        lock_dir=str(root / "locks"),
        health_every=0.2,
    ) as running:
        yield running


@pytest.fixture(scope="module")
def diamond_text():
    from repro.ir.printer import format_function

    return format_function(build_diamond())


def _wait_until(predicate, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


class TestEndToEnd:
    def test_request_through_frontend_matches_reference(
        self, cluster, diamond_text
    ):
        request = CompileRequest(
            source=diamond_text, args=(4, 5, 1), variant="ssapre"
        )
        with TCPServiceClient(cluster.host, cluster.port) as client:
            response = client.handle(request)
        expected = run_function(prepare(build_diamond()), [4, 5, 1])
        assert response.status == "ok"
        assert not response.degraded
        assert response.observable() == expected.observable()

    def test_repeat_requests_route_to_one_owner(
        self, cluster, diamond_text
    ):
        request = CompileRequest(
            source=diamond_text, args=(4, 5, 0), variant="ssapre"
        )
        with TCPServiceClient(cluster.host, cluster.port) as client:
            before = cluster.merged_metrics()["cluster"]["routed"]
            for _ in range(3):
                assert client.handle(request).status == "ok"
            after = cluster.merged_metrics()["cluster"]["routed"]
        moved = {
            wid: after[wid] - before[wid] for wid in after
        }
        # All three requests land on the key's single ring owner...
        assert sorted(moved.values()) == [0, 3]
        # ...and that owner is the one the ring names.
        prepared = prepare(parse_function(diamond_text))
        key = structural_key(
            prepared, PipelineConfig(variant="ssapre"), engine="compiled"
        )
        owner = cluster.frontend.ring.route(key)
        assert moved[owner] == 3

    def test_frontend_answers_ping(self, cluster):
        with TCPServiceClient(cluster.host, cluster.port) as client:
            answer = client._exchange({"cmd": "ping"})
        assert answer == {"status": "ok", "pong": True, "role": "frontend"}

    def test_merged_metrics_schema_and_topology(self, cluster):
        merged = cluster.merged_metrics()
        assert merged["schema"] == METRICS_SCHEMA
        assert merged["workers"] == 2
        topology = merged["cluster"]
        assert {w["worker_id"] for w in topology["workers"]} == {"w0", "w1"}
        assert topology["ring"]["nodes"] == ["w0", "w1"]
        assert set(topology["routed"]) == {"w0", "w1"}
        assert merged["counters"]["requests"] >= 1

    def test_malformed_request_still_gets_an_error_response(self, cluster):
        with TCPServiceClient(cluster.host, cluster.port) as client:
            answer = client._exchange({"source": "not a program ("})
        assert answer["status"] == "error"


class TestColdKeyRace:
    def test_race_compiles_exactly_once(self, cluster, loop_source):
        before = cluster.merged_metrics()["counters"]
        answers = race_cold_key(
            cluster.worker_ports(),
            {
                "source": loop_source,
                "args": [2, 3, 5],
                "variant": "mc-ssapre",
                "train_args": [2, 3, 5],
            },
        )
        after = cluster.merged_metrics()["counters"]
        assert len(answers) == 2
        assert all(a["status"] == "ok" for a in answers)
        observables = {
            (a["return_value"], tuple(a["output"] or ()))
            for a in answers
        }
        assert len(observables) == 1
        assert after["compiles"] - before["compiles"] == 1
        assert after["lock_rehydrates"] - before["lock_rehydrates"] == 1


class TestCrashRecovery:
    def test_killed_worker_is_restarted_and_serves(
        self, cluster, diamond_text
    ):
        victim = cluster.workers[0]
        old_port = victim.port
        victim.kill()  # simulated crash: no cleanup, flock dies with it
        assert _wait_until(
            lambda: victim.alive() and victim.port != old_port
        ), "health loop never restarted the killed worker"
        assert victim.restarts >= 1

        # The cluster serves requests owned by either worker: route one
        # request to each by construction.
        with TCPServiceClient(cluster.host, cluster.port) as client:
            for args in [(4, 5, 1), (9, 2, 0)]:
                response = client.handle(CompileRequest(
                    source=diamond_text, args=args, variant="ssapre"
                ))
                assert response.status == "ok"
        merged = cluster.merged_metrics()
        assert merged["cluster"]["restarts"] >= 1
