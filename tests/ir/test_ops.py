"""Tests for the operator table and semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.ops import (
    BINARY_OPS,
    UNARY_OPS,
    is_trapping,
    op_info,
)

ints = st.integers(min_value=-(2**40), max_value=2**40)


class TestTables:
    def test_all_binary_ops_have_arity_two(self):
        for info in BINARY_OPS.values():
            assert info.arity == 2

    def test_all_unary_ops_have_arity_one(self):
        for info in UNARY_OPS.values():
            assert info.arity == 1

    def test_tables_are_disjoint(self):
        assert not set(BINARY_OPS) & set(UNARY_OPS)

    def test_op_info_lookup(self):
        assert op_info("add").name == "add"
        assert op_info("neg").name == "neg"

    def test_op_info_unknown_raises(self):
        with pytest.raises(KeyError):
            op_info("frobnicate")

    def test_costs_are_positive(self):
        for info in list(BINARY_OPS.values()) + list(UNARY_OPS.values()):
            assert info.cost > 0

    def test_trapping_classification(self):
        assert is_trapping("div")
        assert is_trapping("mod")
        assert is_trapping("fdiv")
        assert not is_trapping("add")
        assert not is_trapping("mul")


class TestSemantics:
    """Total semantics: no operator may raise on any integer inputs."""

    def test_division_is_truncating_like_c(self):
        div = BINARY_OPS["div"].func
        assert div(7, 2) == 3
        assert div(-7, 2) == -3
        assert div(7, -2) == -3
        assert div(-7, -2) == 3

    def test_division_by_zero_yields_zero(self):
        assert BINARY_OPS["div"].func(5, 0) == 0
        assert BINARY_OPS["mod"].func(5, 0) == 0
        assert BINARY_OPS["fdiv"].func(5, 0) == 0

    @given(ints, ints)
    def test_div_mod_identity(self, a, b):
        div = BINARY_OPS["div"].func
        mod = BINARY_OPS["mod"].func
        if b != 0:
            assert div(a, b) * b + mod(a, b) == a

    @given(ints, ints)
    def test_every_binary_op_is_total(self, a, b):
        for info in BINARY_OPS.values():
            result = info.func(a, b)
            assert isinstance(result, int)

    @given(ints)
    def test_every_unary_op_is_total(self, a):
        for info in UNARY_OPS.values():
            assert isinstance(info.func(a), int)

    @given(ints, ints)
    def test_commutative_ops_commute(self, a, b):
        for info in BINARY_OPS.values():
            if info.commutative:
                assert info.func(a, b) == info.func(b, a), info.name

    def test_shifts_mask_their_amount(self):
        shl = BINARY_OPS["shl"].func
        shr = BINARY_OPS["shr"].func
        assert shl(1, 64) == shl(1, 0)
        assert shr(8, 65) == shr(8, 1)

    def test_comparisons_return_zero_or_one(self):
        for name in ("eq", "ne", "lt", "le", "gt", "ge"):
            func = BINARY_OPS[name].func
            assert func(1, 2) in (0, 1)
            assert func(2, 1) in (0, 1)

    def test_sqrti(self):
        sqrti = UNARY_OPS["sqrti"].func
        assert sqrti(16) == 4
        assert sqrti(17) == 4
        assert sqrti(-16) == 4  # |a| is used
        assert sqrti(0) == 0
