"""PipelineConfig: validation, auto-resolution, canonical-by-construction.

``canonical()`` is the serving layer's cache-key contract: every
dataclass field participates unless explicitly excluded, and a field
that is neither excluded nor a canonical-safe scalar must fail loudly —
a new knob can never silently alias cache entries.
"""

from dataclasses import dataclass

import pytest

from repro.pipeline import PipelineConfig, prepare

from tests.conftest import build_diamond
from tests.core.test_shape import build_grid


class TestValidation:
    def test_rejects_unknown_solver(self):
        with pytest.raises(ValueError, match="unknown solver"):
            PipelineConfig(variant="mc-ssapre", solver="simplex")

    def test_solver_applies_only_to_mc_ssapre(self):
        with pytest.raises(ValueError, match="mc-ssapre"):
            PipelineConfig(variant="ssapre", solver="lospre")
        # The default solver is fine on any variant.
        assert PipelineConfig(variant="ssapre").solver == "mincut"

    def test_stages_carry_the_solver(self):
        config = PipelineConfig(variant="mc-ssapre", solver="lospre")
        pre = [s for s in config.stages() if s.name == "mc-ssapre"][0]
        assert pre.solver == "lospre"


class TestResolved:
    def test_forced_solvers_resolve_to_themselves(self):
        func = prepare(build_diamond())
        for solver in ("mincut", "lospre"):
            config = PipelineConfig(variant="mc-ssapre", solver=solver)
            assert config.resolved(func) is config

    def test_auto_resolves_by_shape(self):
        config = PipelineConfig(variant="mc-ssapre", solver="auto")
        assert config.resolved(prepare(build_diamond())).solver == "lospre"
        assert config.resolved(build_grid(10)).solver == "mincut"

    def test_resolution_is_stable(self):
        func = prepare(build_diamond())
        config = PipelineConfig(variant="mc-ssapre", solver="auto")
        assert config.resolved(func) == config.resolved(func)


class TestCanonical:
    def test_pinned_rendering(self):
        # The exact string is the cache-key contract: reordering or
        # renaming fields re-keys every artifact (KEY_SCHEMA bump).
        assert PipelineConfig().canonical() == (
            "variant=mc-ssapre;fold_constants=0;cleanup=0;rounds=1;"
            "solver=mincut"
        )

    def test_every_field_participates(self):
        base = PipelineConfig().canonical()
        assert "solver=mincut" in base
        lospre = PipelineConfig(solver="lospre").canonical()
        assert base != lospre and "solver=lospre" in lospre

    def test_unclassified_field_fails_loudly(self):
        @dataclass(frozen=True)
        class Extended(PipelineConfig):
            knob: tuple = (1, 2)

        with pytest.raises(TypeError, match="knob"):
            Extended().canonical()

    def test_exclude_list_is_honored(self):
        @dataclass(frozen=True)
        class Excluded(PipelineConfig):
            knob: tuple = (1, 2)
            _CANONICAL_EXCLUDE = frozenset({"knob"})

        rendered = Excluded().canonical()
        assert rendered == PipelineConfig().canonical()
        assert "knob" not in rendered

    def test_new_scalar_field_is_keyed_by_construction(self):
        @dataclass(frozen=True)
        class WithKnob(PipelineConfig):
            level: int = 2

        assert WithKnob().canonical().endswith(";level=2")
