"""Lifetime-optimality tests (paper Theorem 9).

The reverse-labelled (sink-side) cut must produce temporary live ranges no
longer than the source-side cut, at identical computational cost, and
among tied minimum cuts it must pick the one closest to the sink.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.liveness import compute_liveness
from repro.bench.generator import ProgramSpec, generate_program, random_args
from repro.core.mcssapre.driver import run_mc_ssapre
from repro.pipeline import prepare
from repro.profiles.interp import run_function
from repro.ssa.construct import construct_ssa


def temp_live_range_size(func, profile=None) -> int:
    """Total static live range of PRE temporaries: the number of
    (block, temp-version) pairs at which a %pre variable is live-in."""
    liveness = compute_liveness(func, by_version=True)
    total = 0
    for label in func.blocks:
        for name, version in liveness.live_in[label]:
            if name.startswith("%pre"):
                total += 1
    return total


def compile_both_sides(source, args):
    prepared = prepare(source)
    train = run_function(prepared, args)
    late = copy.deepcopy(prepared)
    construct_ssa(late)
    run_mc_ssapre(late, train.profile.nodes_only(), sink_closest=True)
    early = copy.deepcopy(prepared)
    construct_ssa(early)
    run_mc_ssapre(early, train.profile.nodes_only(), sink_closest=False)
    return prepared, train, late, early


class TestSinkSideCut:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_same_cost_smaller_or_equal_lifetime(self, seed):
        spec = ProgramSpec(name="lt", seed=seed, max_depth=2)
        prog = generate_program(spec)
        args = random_args(spec, 1)
        prepared, train, late, early = compile_both_sides(prog.func, args)

        late_run = run_function(late, args)
        early_run = run_function(early, args)
        # Both cuts are minimum cuts: identical computational cost.
        assert late_run.dynamic_cost == early_run.dynamic_cost
        assert late_run.observable() == early_run.observable()
        # Lifetime: the later cut never extends live ranges.
        assert temp_live_range_size(late) <= temp_live_range_size(early)

    def test_strictly_shorter_on_tied_example(self):
        """The curated running example has a tie where computing in place
        (late) beats inserting early by a strictly smaller live range."""
        from repro.examples_data.running_example import build_running_example

        ex = build_running_example()
        from repro.ir.transforms import split_critical_edges

        late = copy.deepcopy(ex.func)
        split_critical_edges(late)
        construct_ssa(late)
        run_mc_ssapre(late, ex.profile, sink_closest=True)

        early = copy.deepcopy(ex.func)
        split_critical_edges(early)
        construct_ssa(early)
        run_mc_ssapre(early, ex.profile, sink_closest=False)

        assert temp_live_range_size(late) < temp_live_range_size(early)

    def test_extraneous_phis_removed_in_output(self, straightline):
        """Minimal-SSA form for t: no phi of a temp without a use."""
        from repro.ir.instructions import Assign
        from repro.ir.values import Var
        from tests.conftest import as_ssa

        ssa = as_ssa(straightline)
        from repro.profiles.profile import ExecutionProfile

        run_mc_ssapre(ssa, ExecutionProfile(node_freq={"entry": 1}))
        used = set()
        for block in ssa:
            for stmt in block.body:
                for op in stmt.used_operands():
                    if isinstance(op, Var):
                        used.add(op)
            for phi in block.phis:
                for op in phi.args.values():
                    if isinstance(op, Var):
                        used.add(op)
            for op in block.terminator.used_operands():
                if isinstance(op, Var):
                    used.add(op)
        for block in ssa:
            for phi in block.phis:
                if phi.target.name.startswith("%pre"):
                    assert phi.target in used


class TestNoUselessSaves:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_every_temp_def_is_used(self, seed):
        """Lifetime optimality's second half: t is never stored to
        unnecessarily — every definition of a PRE temp has a use."""
        from repro.ir.instructions import Assign
        from repro.ir.values import Var

        spec = ProgramSpec(name="saves", seed=seed, max_depth=2)
        prog = generate_program(spec)
        args = random_args(spec, 1)
        prepared = prepare(prog.func)
        train = run_function(prepared, args)
        ssa = copy.deepcopy(prepared)
        construct_ssa(ssa)
        run_mc_ssapre(ssa, train.profile.nodes_only())

        used: set = set()
        defined: set = set()
        for block in ssa:
            for phi in block.phis:
                if phi.target.name.startswith("%pre"):
                    defined.add(phi.target)
                for op in phi.args.values():
                    if isinstance(op, Var):
                        used.add(op)
            for stmt in block.body:
                if isinstance(stmt, Assign) and stmt.target.name.startswith("%pre"):
                    defined.add(stmt.target)
                for op in stmt.used_operands():
                    if isinstance(op, Var):
                        used.add(op)
            for op in block.terminator.used_operands():
                if isinstance(op, Var):
                    used.add(op)
        dead = {v for v in defined if v not in used}
        assert not dead, f"unused temp definitions: {dead}"
