"""SSA copy propagation.

On SSA form, a copy ``x.2 = y.5`` makes ``x.2`` a pure alias of ``y.5``:
every use of ``x.2`` can read ``y.5`` directly and the copy becomes dead.
Chains (``a = b; c = a``) resolve to the root with path compression.
Phis are *not* treated as copies (their value is merge-dependent), but a
phi all of whose arguments alias one same value is itself an alias and is
folded too — that cleans up the single-source phis SSA construction can
leave behind after CFG surgery.

Copy propagation is what turns PRE's ``t = a+b; x = t; ... use x`` shape
into direct uses of ``t``, after which DCE removes the stranded copies.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import (
    Assign,
    BinOp,
    CondJump,
    Load,
    Return,
    Store,
    UnaryOp,
)
from repro.ir.values import Const, Operand, Var
from repro.ssa.ssa_verifier import is_ssa


def propagate_copies(func: Function, fold_phis: bool = True) -> int:
    """Propagate SSA copies in place; returns the number of rewired uses.

    Requires SSA input (versioned definitions); raises otherwise.
    """
    if not is_ssa(func):
        raise ValueError("copy propagation requires SSA input")

    alias: dict[Var, Operand] = {}

    def resolve(operand: Operand) -> Operand:
        seen = []
        current = operand
        while isinstance(current, Var) and current in alias:
            seen.append(current)
            current = alias[current]
        for var in seen:  # path compression
            alias[var] = current
        return current

    # 1. Collect direct copies.
    for block in func:
        for stmt in block.body:
            if isinstance(stmt, Assign) and isinstance(stmt.rhs, (Var, Const)):
                alias[stmt.target] = stmt.rhs

    # 2. Fold single-valued phis to a fixed point: a phi whose arguments
    #    all resolve to one operand (or to the phi's own target, for
    #    degenerate loops) is an alias of that operand.
    if fold_phis:
        changed = True
        while changed:
            changed = False
            for block in func:
                for phi in block.phis:
                    if phi.target in alias:
                        continue
                    resolved = {
                        resolve(arg)
                        for arg in phi.args.values()
                        if resolve(arg) != phi.target
                    }
                    if len(resolved) == 1:
                        alias[phi.target] = resolved.pop()
                        changed = True

    if not alias:
        return 0

    # 3. Rewire every use.
    rewired = 0

    def rewrite(operand: Operand) -> Operand:
        nonlocal rewired
        root = resolve(operand)
        if root != operand:
            rewired += 1
        return root

    for block in func:
        for phi in block.phis:
            phi.args = {pred: rewrite(arg) for pred, arg in phi.args.items()}
        for stmt in block.body:
            if isinstance(stmt, Assign):
                rhs = stmt.rhs
                if isinstance(rhs, BinOp):
                    rhs.left = rewrite(rhs.left)
                    rhs.right = rewrite(rhs.right)
                elif isinstance(rhs, UnaryOp):
                    rhs.operand = rewrite(rhs.operand)
                elif isinstance(rhs, Load):
                    rhs.index = rewrite(rhs.index)
                else:
                    stmt.rhs = rewrite(rhs)
            elif isinstance(stmt, Store):
                stmt.index = rewrite(stmt.index)
                stmt.value = rewrite(stmt.value)
            else:  # Output
                stmt.value = rewrite(stmt.value)
        term = block.terminator
        if isinstance(term, CondJump):
            term.cond = rewrite(term.cond)
        elif isinstance(term, Return) and term.value is not None:
            term.value = rewrite(term.value)

    if rewired:
        func.mark_code_mutated()
    return rewired
