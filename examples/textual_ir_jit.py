#!/usr/bin/env python3
"""A JIT-shaped workflow over the textual IR.

The paper argues MC-SSAPRE suits just-in-time compilers: it needs only
node frequencies (cheap counters) and its min-cut problems are tiny.  This
example plays that scenario out:

1. parse a function from its textual IR (as a JIT would receive bytecode),
2. interpret it "warm" to accumulate node counters,
3. recompile with MC-SSAPRE using those counters,
4. keep serving requests, now faster,
5. print the before/after IR side by side.

Run:  python examples/textual_ir_jit.py
"""

from repro.lang.parser import parse_function
from repro.ir.printer import format_function
from repro.pipeline import compile_variant, prepare
from repro.profiles.counts import normalize_expr_counts
from repro.profiles.interp import run_function
from repro.profiles.profile import ExecutionProfile

SOURCE = """
func polyval(x, k, n) {
entry:
  i = 0
  acc = 0
  jump head
head:
  c = lt i, n
  br c, body, done
body:
  # Horner-ish step; x*k is invariant in the loop.
  scale = mul x, k
  acc = mul acc, 2
  acc = add acc, scale
  t = gt acc, 1000000
  br t, clip, next
clip:
  acc = mod acc, 1000003
  jump next
next:
  i = add i, 1
  jump head
done:
  # epilogue reuses x*k once more
  fin = mul x, k
  acc = add acc, fin
  ret acc
}
"""


def main() -> None:
    func = parse_function(SOURCE)
    prepared = prepare(func)

    # --- warm-up: run interpreted, collecting node counters ----------
    counters = ExecutionProfile()
    warmup_inputs = [[3, 7, 40], [5, 2, 55], [2, 9, 30]]
    for args in warmup_inputs:
        run = run_function(prepared, args)
        for label, count in run.profile.node_freq.items():
            counters.node_freq[label] = counters.node_freq.get(label, 0) + count
    print(f"warmed up on {len(warmup_inputs)} calls; "
          f"{sum(counters.node_freq.values())} block executions profiled")

    # --- recompile with the accumulated node counters -----------------
    compiled = compile_variant(prepared, "mc-ssapre", profile=counters)

    # --- measure a fresh request --------------------------------------
    request = [4, 6, 60]
    cold = run_function(prepared, request)
    hot = run_function(compiled.func, request)
    assert cold.observable() == hot.observable()

    key = ("mul", ("var", "x"), ("var", "k"))
    cold_counts = normalize_expr_counts(cold.expr_counts)
    hot_counts = normalize_expr_counts(hot.expr_counts)
    print(f"\nrequest {request}:")
    print(f"  x*k evaluations: {cold_counts.get(key, 0)} -> {hot_counts.get(key, 0)}")
    print(f"  weighted dynamic cost: {cold.dynamic_cost} -> {hot.dynamic_cost} "
          f"({(cold.dynamic_cost - hot.dynamic_cost) / cold.dynamic_cost:.1%} faster)")

    print("\n--- before " + "-" * 50)
    print(format_function(prepared))
    print("\n--- after (MC-SSAPRE, node-frequency profile only) " + "-" * 12)
    print(format_function(compiled.func))


if __name__ == "__main__":
    main()
