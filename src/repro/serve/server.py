"""The compile-and-run service: cache, single-flight, timeout, fallback.

:class:`CompileService` is the front end the CLI (and the tests) drive.
One request carries a source program, a pipeline configuration and an
argument vector; the service answers with the program's observable
behaviour plus where the answer came from:

* **memory / disk** — the artifact was already cached;
* **compile** — this request built the artifact (and cached it);
* **coalesced** — another in-flight request for the same key was already
  building it, so this one just waited for that build (single-flight:
  N concurrent identical requests trigger exactly one compile).

Failure is graceful by construction: if the requested variant's compile
raises, the service degrades to the *prepared* function on the reference
interpreter — the answer stays correct, only slower, and the response is
marked ``degraded``.  A build that exceeds the request's deadline answers
``timeout`` without poisoning the cache (the build keeps running and
later requests hit its artifact).

:func:`build_artifact` is the pure build step, deliberately usable
without a service — the ``cache`` oracle in :mod:`repro.check` calls it
directly to prove warm-cache answers bit-identical to cold compiles.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.adapt.manager import AdaptConfig

from repro.ir.function import Function
from repro.lang.parser import parse_function
from repro.pipeline import (
    ENGINES,
    PROFILING_MODES,
    PipelineConfig,
    compile_variant,
    make_runner,
    prepare,
)
from repro.profiles.compiled import compile_function
from repro.profiles.interp import InterpreterError, RunResult, run_function
from repro.profiles.profile import ExecutionProfile
from repro.serve.keys import artifact_key, structural_key
from repro.serve.metrics import ServeMetrics
from repro.serve.store import Artifact, ArtifactStore

#: Default per-request deadline (seconds).  Generous: tier-1 compiles run
#: in milliseconds; the deadline exists for adversarial inputs.
DEFAULT_TIMEOUT_S = 30.0

DEFAULT_MAX_STEPS = 2_000_000

__all__ = [
    "DEFAULT_TIMEOUT_S",
    "CompileRequest",
    "ServeResponse",
    "CompileService",
    "build_artifact",
    "execute_artifact",
]


@dataclass(frozen=True)
class CompileRequest:
    """One serving request: a program, a pipeline config, an input vector."""

    source: str
    args: tuple[int, ...] = ()
    variant: str = "mc-ssapre"
    #: Training input for profile-guided variants; part of the cache key.
    train_args: tuple[int, ...] | None = None
    engine: str = "compiled"
    fold_constants: bool = False
    cleanup: bool = False
    rounds: int = 1
    #: Speculation solver for mc-ssapre requests ("mincut"/"lospre"/
    #: "auto"); "auto" is cache-keyed by the solver it resolves to.
    solver: str = "mincut"
    max_steps: int = DEFAULT_MAX_STEPS
    #: Profiling mode for the training run and the served program:
    #: "full" counts every node and edge; "probes" instruments only the
    #: minimum coverage probe set (repro.profiles.probes) and
    #: reconstructs exact node frequencies by flow conservation.
    #: Deliberately *not* part of the artifact key: reconstruction is
    #: bit-exact, so both modes produce observationally identical
    #: artifacts and may share cache entries.
    profiling: str = "full"

    def __post_init__(self) -> None:
        if self.profiling not in PROFILING_MODES:
            raise ValueError(
                f"unknown profiling mode {self.profiling!r}; "
                f"expected one of {PROFILING_MODES}"
            )

    def config(self) -> PipelineConfig:
        return PipelineConfig(
            variant=self.variant,
            fold_constants=self.fold_constants,
            cleanup=self.cleanup,
            rounds=self.rounds,
            solver=self.solver,
        )

    @classmethod
    def from_dict(cls, data: dict) -> "CompileRequest":
        """Build a request from one JSON-lines record (the wire format)."""
        if not isinstance(data, dict):
            raise ValueError(f"request must be a JSON object, got {type(data).__name__}")
        if "source" not in data:
            raise ValueError("request is missing 'source'")
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown request fields: {sorted(unknown)}")
        kwargs = dict(data)
        kwargs["args"] = tuple(kwargs.get("args", ()))
        if kwargs.get("train_args") is not None:
            kwargs["train_args"] = tuple(kwargs["train_args"])
        return cls(**kwargs)


@dataclass
class ServeResponse:
    """One serving answer: status, provenance and observable behaviour."""

    status: str  # "ok" | "error" | "timeout"
    served_by: str | None = None  # "compile" | "memory" | "disk" | "coalesced"
    key: str | None = None
    variant: str | None = None
    degraded: bool = False
    return_value: int | None = None
    output: tuple[int, ...] = ()
    dynamic_cost: int | None = None
    steps: int | None = None
    error: str | None = None
    timings: dict[str, float] = field(default_factory=dict)

    def observable(self) -> tuple:
        return (self.return_value, tuple(self.output))

    @classmethod
    def from_dict(cls, data: dict) -> "ServeResponse":
        """Rebuild a response from its wire form (inverse of to_dict);
        TCP clients use this to look exactly like an in-process service."""
        return cls(
            status=data.get("status", "error"),
            served_by=data.get("served_by"),
            key=data.get("key"),
            variant=data.get("variant"),
            degraded=bool(data.get("degraded", False)),
            return_value=data.get("return_value"),
            output=tuple(data.get("output") or ()),
            dynamic_cost=data.get("dynamic_cost"),
            steps=data.get("steps"),
            error=data.get("error"),
            timings=dict(data.get("timings") or {}),
        )

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "served_by": self.served_by,
            "key": self.key,
            "variant": self.variant,
            "degraded": self.degraded,
            "return_value": self.return_value,
            "output": list(self.output),
            "dynamic_cost": self.dynamic_cost,
            "steps": self.steps,
            "error": self.error,
            "timings": {k: round(v, 6) for k, v in self.timings.items()},
        }


def build_artifact(
    prepared: Function,
    config: PipelineConfig,
    *,
    key: str,
    engine: str = "compiled",
    train_args: tuple[int, ...] | None = None,
    profile: ExecutionProfile | None = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    profiling: str = "full",
) -> Artifact:
    """Cold-build one artifact: train, optimise, lower.  Pure — no cache.

    This is the single definition of "what a cache miss computes"; the
    server and the ``cache`` consistency oracle share it, so whatever a
    warm hit returns is byte-comparable against a fresh call of this.
    Profile-guided configs take either ``train_args`` (intensional: a
    training run on *engine* produces the profile) or an explicit
    ``profile`` (extensional — the adaptation tier passes its live
    snapshot here).  Compile failures degrade to the prepared function on
    the reference interpreter rather than raising: a served answer must
    exist for every well-formed program.

    ``profiling="probes"`` applies minimum-coverage profiling twice:
    the training run counts only the probe set (reconstructed node
    frequencies are bit-identical, so the compiled code cannot differ),
    and the served compiled program itself is lowered in sparse mode —
    probes placed on the *optimised* function, weighted by the training
    profile so its hot blocks stay uninstrumented.  CFG shapes outside
    the certified envelope fall back to full counting silently; the
    artifact's ``profiling`` field records what actually shipped.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if profiling not in PROFILING_MODES:
        raise ValueError(
            f"unknown profiling mode {profiling!r}; "
            f"expected one of {PROFILING_MODES}"
        )
    if profile is not None and train_args is not None:
        raise ValueError("pass either train_args or profile, not both")
    train_profile = profile if config.needs_profile else None
    if config.needs_profile and train_profile is None:
        if train_args is None:
            raise ValueError(
                f"variant {config.variant!r} is profile-guided and needs "
                "train_args or an explicit profile"
            )
        if profiling == "probes":
            from repro.profiles.probes import run_probed

            train_profile = run_probed(
                prepared, list(train_args), max_steps, engine=engine
            ).result.profile
        else:
            runner = make_runner(engine)
            train_profile = runner(
                prepared, list(train_args), max_steps
            ).profile
    train_node_freq = (
        dict(train_profile.node_freq) if train_profile is not None else None
    )
    try:
        compiled = compile_variant(prepared, profile=train_profile, config=config)
    except Exception as exc:  # noqa: BLE001 - degrade, never fail the request
        return Artifact(
            key=key,
            variant=config.variant,
            engine=engine,
            func=prepared,
            program=None,
            report=None,
            degraded=True,
            degraded_reason=f"{type(exc).__name__}: {exc}",
            train_node_freq=train_node_freq,
        )
    program = None
    served_profiling = "full"
    if engine == "compiled":
        placement = None
        if profiling == "probes":
            from repro.profiles.probes import try_place_probes

            placement, _reason = try_place_probes(
                compiled.func, profile=train_profile
            )
            if placement is not None:
                served_profiling = "probes"
        program = compile_function(compiled.func, probes=placement)
    report = compiled.report.to_dict() if compiled.report is not None else None
    return Artifact(
        key=key,
        variant=config.variant,
        engine=engine,
        func=compiled.func,
        program=program,
        report=report,
        train_node_freq=train_node_freq,
        profiling=served_profiling,
    )


def execute_artifact(
    artifact: Artifact,
    args: tuple[int, ...],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> RunResult:
    """Run a served artifact: compiled program if present, else reference."""
    if artifact.program is not None:
        return artifact.program.run(list(args), max_steps=max_steps)
    return run_function(artifact.func, list(args), max_steps=max_steps)


class _Flight:
    """One in-flight build; waiters block on :attr:`done`."""

    __slots__ = ("done", "artifact", "error", "rehydrated")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.artifact: Artifact | None = None
        self.error: BaseException | None = None
        #: True when the cross-process lock was won *after* another
        #: worker already published the artifact: no compile ran here.
        self.rehydrated = False


class CompileService:
    """Thread-safe compile-and-run front end over an :class:`ArtifactStore`."""

    def __init__(
        self,
        store: ArtifactStore | None = None,
        metrics: ServeMetrics | None = None,
        *,
        max_workers: int = 4,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        build: Callable[..., Artifact] | None = None,
        adapt: "AdaptConfig | None" = None,
        lock_dir: str | None = None,
        plan_cache: int = 0,
    ) -> None:
        self.store = store or ArtifactStore()
        self.metrics = metrics or ServeMetrics()
        self.timeout_s = timeout_s
        self._corrupt_seen = self.store.disk_corrupt
        #: Injectable cold-build (tests swap in slow/failing builds to
        #: exercise coalescing and timeouts deterministically).
        self._build = build or build_artifact
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._inflight: dict[str, _Flight] = {}
        self._inflight_lock = threading.Lock()
        #: Cross-process single-flight (docs/SERVING.md "Cluster"): when
        #: several worker processes share one disk tier, per-key file
        #: locks under ``lock_dir`` extend the in-flight table across
        #: them — the race loser rehydrates from disk instead of
        #: recompiling.  ``None`` (the default) keeps the classic
        #: single-process behaviour.
        self._locks = None
        if lock_dir is not None:
            from repro.serve.cluster.locks import KeyLockManager

            self._locks = KeyLockManager(
                lock_dir,
                on_break=lambda _path: self.metrics.inc("lock_breaks"),
            )
        #: Bounded plan cache: memoises (source, config, engine,
        #: train_args) -> (prepared function, resolved config, artifact
        #: key), skipping parse/prepare/key on repeat requests.  Safe
        #: because the pipeline never mutates its input function
        #: (repro.pipeline docstring).  0 (the default) disables it so
        #: the single-process latency pins keep measuring the full
        #: request path; cluster workers turn it on, where hash routing
        #: concentrates each program's traffic on its owning worker.
        self._plan_cache_size = plan_cache
        self._plans: OrderedDict[tuple, tuple] = OrderedDict()
        self._plans_lock = threading.Lock()
        #: The online re-optimisation tier (docs/SERVING.md "Adaptation").
        #: ``None`` keeps the classic compile-on-miss behaviour.
        self.adapt = None
        if adapt is not None:
            from repro.serve.adapt.manager import AdaptationManager

            self.adapt = AdaptationManager(adapt, self)

    def close(self) -> None:
        if self.adapt is not None:
            self.adapt.close()
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def handle(self, request: CompileRequest) -> ServeResponse:
        """Serve one request end to end.  Never raises: errors become
        ``status="error"`` responses so one bad request cannot take down
        the serving loop."""
        t_start = time.perf_counter()
        self.metrics.inc("requests")
        try:
            response = self._handle(request, t_start)
        except Exception as exc:  # noqa: BLE001 - the loop must survive
            self.metrics.inc("errors")
            response = ServeResponse(
                status="error",
                variant=request.variant,
                error=f"{type(exc).__name__}: {exc}",
            )
        response.timings["request_s"] = time.perf_counter() - t_start
        self.metrics.observe("request_s", response.timings["request_s"])
        return response

    # ------------------------------------------------------------------
    def _handle(self, request: CompileRequest, t_start: float) -> ServeResponse:
        if self.adapt is not None:
            config = request.config()  # validates variant/rounds/solver
            prepared = prepare(parse_function(request.source))
            config = config.resolved(prepared)
            return self._handle_adaptive(request, prepared, config)
        prepared, config, key = self._plan(request)
        deadline = t_start + self.timeout_s

        artifact, tier = self.store.get(key)
        self._sync_disk_corrupt()
        if artifact is not None:
            self.metrics.inc("hits_memory" if tier == "memory" else "hits_disk")
            served_by = tier
        else:
            artifact, served_by = self._build_single_flight(
                key, prepared, config, request, deadline
            )
            if artifact is None:  # deadline passed while building
                self.metrics.inc("timeouts")
                return ServeResponse(
                    status="timeout",
                    key=key,
                    variant=config.variant,
                    error=f"build exceeded {self.timeout_s:g}s deadline",
                )
        if artifact.degraded:
            self.metrics.inc("degraded")

        t_exec = time.perf_counter()
        try:
            result = execute_artifact(artifact, request.args, request.max_steps)
        except InterpreterError as exc:
            self.metrics.inc("errors")
            return ServeResponse(
                status="error",
                served_by=served_by,
                key=key,
                variant=config.variant,
                degraded=artifact.degraded,
                error=f"InterpreterError: {exc}",
            )
        execute_s = time.perf_counter() - t_exec
        self.metrics.observe("execute_s", execute_s)
        if (
            artifact.program is not None
            and getattr(artifact.program, "probes", None) is not None
        ):
            # The run counted only probes and solved for the rest.
            self.metrics.inc("profile_reconstructions")

        return ServeResponse(
            status="ok",
            served_by=served_by,
            key=key,
            variant=config.variant,
            degraded=artifact.degraded,
            return_value=result.return_value,
            output=tuple(result.output),
            dynamic_cost=result.dynamic_cost,
            steps=result.steps,
            timings={"execute_s": execute_s},
        )

    # ------------------------------------------------------------------
    def _handle_adaptive(
        self,
        request: CompileRequest,
        prepared: Function,
        config: PipelineConfig,
    ) -> ServeResponse:
        """Serve one request through the tiered adaptation loop.

        Identity is the *structural* key (profile excluded): all traffic
        for one (program, config, engine) shares a live profile and one
        hot-swappable artifact binding.  An unbound key serves on the
        reference interpreter over the prepared function (tier 0,
        profiling for free); a bound key serves the pinned artifact.
        The binding read is a single reference load of an immutable
        object, so a request racing a hot swap sees the old artifact or
        the new one — never a mixture — and never blocks on the swap.
        """
        skey = structural_key(prepared, config, engine=request.engine)
        state = self.adapt.state_for(
            skey, prepared, config, request.engine, request.max_steps
        )
        binding = state.binding  # atomic snapshot; may hot-swap underneath
        t_exec = time.perf_counter()
        if binding is None:
            self.metrics.inc("tier_interp")
            served_by, key = "interp", skey
            degraded = False
            try:
                result = run_function(
                    prepared, list(request.args), max_steps=request.max_steps
                )
            except InterpreterError as exc:
                self.metrics.inc("errors")
                return ServeResponse(
                    status="error",
                    served_by=served_by,
                    key=key,
                    variant=config.variant,
                    error=f"InterpreterError: {exc}",
                )
            self.adapt.record_interp(state, result)
        else:
            self.metrics.inc("hits_memory")
            served_by, key = "memory", binding.key
            artifact = binding.artifact
            degraded = artifact.degraded
            try:
                result = execute_artifact(
                    artifact, request.args, request.max_steps
                )
            except InterpreterError as exc:
                self.metrics.inc("errors")
                return ServeResponse(
                    status="error",
                    served_by=served_by,
                    key=key,
                    variant=config.variant,
                    degraded=degraded,
                    error=f"InterpreterError: {exc}",
                )
            self.adapt.record_served(state, artifact, result)
        execute_s = time.perf_counter() - t_exec
        self.metrics.observe("execute_s", execute_s)
        return ServeResponse(
            status="ok",
            served_by=served_by,
            key=key,
            variant=config.variant,
            degraded=degraded,
            return_value=result.return_value,
            output=tuple(result.output),
            dynamic_cost=result.dynamic_cost,
            steps=result.steps,
            timings={"execute_s": execute_s},
        )

    # ------------------------------------------------------------------
    def _plan(self, request: CompileRequest) -> tuple[Function, PipelineConfig, str]:
        """Parse, prepare and key one request — memoised when the plan
        cache is on.

        The plan is everything about a request that does not depend on
        its input vector: the prepared function, the solver-resolved
        config and the artifact key.  On a warm service those three
        dominate request latency (parse + SSA construction + normalized
        printing ≈ 40x the artifact's execute time), so cluster workers
        cache them per distinct (source, config, engine, train_args).
        """
        plan_key = (
            request.source,
            request.variant,
            request.fold_constants,
            request.cleanup,
            request.rounds,
            request.solver,
            request.engine,
            request.train_args,
        )
        if self._plan_cache_size:
            with self._plans_lock:
                plan = self._plans.get(plan_key)
                if plan is not None:
                    self._plans.move_to_end(plan_key)
            if plan is not None:
                self.metrics.inc("plan_hits")
                return plan
        config = request.config()  # validates variant/rounds/solver
        prepared = prepare(parse_function(request.source))
        # Resolve solver="auto" against the prepared function once: the
        # key, the build and the artifact's report all see the concrete
        # solver the classifier picked.
        config = config.resolved(prepared)
        key = artifact_key(
            prepared,
            config,
            engine=request.engine,
            train_args=request.train_args,
        )
        if self._plan_cache_size:
            with self._plans_lock:
                self._plans[plan_key] = (prepared, config, key)
                self._plans.move_to_end(plan_key)
                while len(self._plans) > self._plan_cache_size:
                    self._plans.popitem(last=False)
        return prepared, config, key

    # ------------------------------------------------------------------
    def _build_single_flight(
        self,
        key: str,
        prepared: Function,
        config: PipelineConfig,
        request: CompileRequest,
        deadline: float,
    ) -> tuple[Artifact | None, str]:
        """Build (or wait for) the artifact for *key*; exactly one build
        runs per key no matter how many requests race on it."""
        with self._inflight_lock:
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._inflight[key] = flight
        if not leader:
            # Someone else is compiling this key: wait for their result.
            self.metrics.inc("coalesced")
            if not flight.done.wait(timeout=max(0.0, deadline - time.perf_counter())):
                return None, "coalesced"
            if flight.error is not None:
                raise flight.error
            return flight.artifact, "coalesced"

        self.metrics.inc("misses")

        def thunk() -> Artifact:
            # profiling is passed only when non-default so injected test
            # builds (which predate the knob) keep their signature.
            extra = (
                {"profiling": request.profiling}
                if request.profiling != "full"
                else {}
            )
            return self._build(
                prepared,
                config,
                key=key,
                engine=request.engine,
                train_args=request.train_args,
                max_steps=request.max_steps,
                **extra,
            )

        future = self._executor.submit(self._run_build, key, flight, thunk)
        try:
            artifact = future.result(timeout=max(0.0, deadline - time.perf_counter()))
        except FutureTimeout:
            # The build keeps running; when it lands it resolves the
            # flight and populates the cache for later requests.
            return None, "compile"
        # Losing the cross-process race is a disk hit, not a compile.
        return artifact, "disk" if flight.rehydrated else "compile"

    def build_keyed(
        self,
        key: str,
        thunk: Callable[[], Artifact],
        timeout: float | None = None,
    ) -> Artifact | None:
        """Single-flight build of *key* from an arbitrary build thunk.

        The shared dedup entry point: the request path and the
        adaptation tier's background recompiles both route through the
        same in-flight table, so two paths racing on one content key
        still compile exactly once.  The leader runs *thunk* on the
        calling thread (callers are already on a worker); followers wait
        for the leader's artifact (``None`` only on a timed-out wait).
        """
        with self._inflight_lock:
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._inflight[key] = flight
        if not leader:
            if not flight.done.wait(timeout=timeout):
                return None
            if flight.error is not None:
                raise flight.error
            return flight.artifact
        return self._run_build(key, flight, thunk)

    def _sync_disk_corrupt(self) -> None:
        """Mirror the disk store's corruption count into the metrics."""
        corrupt = self.store.disk_corrupt
        if corrupt > self._corrupt_seen:
            self.metrics.inc("disk_corrupt", corrupt - self._corrupt_seen)
            self._corrupt_seen = corrupt

    def _run_build(
        self,
        key: str,
        flight: _Flight,
        thunk: Callable[[], Artifact],
    ) -> Artifact:
        """The leader's build (request path: on the executor, so it can
        outlive a timed-out request; adapt path: on the manager's worker).
        Resolves the flight and fills the cache.

        With a lock directory configured, the build also holds the
        cross-process file lock for *key*, and re-checks the shared
        store once the lock is won: losing a cold-key race against
        another worker means the artifact is already on disk, so this
        process rehydrates instead of compiling a duplicate.
        """
        try:
            if self._locks is None:
                artifact = self._compile_into_store(key, thunk)
            else:
                with self._locks.holding(key):
                    cached, _tier = self.store.get(key)
                    if cached is not None:
                        # The request still counted as a miss (both
                        # cache tiers were empty at lookup), so in
                        # cluster mode misses == compiles +
                        # lock_rehydrates.
                        self.metrics.inc("lock_rehydrates")
                        flight.rehydrated = True
                        artifact = cached
                    else:
                        artifact = self._compile_into_store(key, thunk)
            flight.artifact = artifact
            return artifact
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._inflight_lock:
                self._inflight.pop(key, None)
            flight.done.set()

    def _compile_into_store(self, key: str, thunk: Callable[[], Artifact]) -> Artifact:
        t0 = time.perf_counter()
        self.metrics.inc("compiles")
        artifact = thunk()
        if artifact.degraded:
            self.metrics.inc("compile_failures")
        self.metrics.observe("compile_s", time.perf_counter() - t0)
        evicted = self.store.put(key, artifact)
        if evicted:
            self.metrics.inc("evictions", len(evicted))
        return artifact
