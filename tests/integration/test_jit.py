"""Tests for the adaptive (JIT-style) compilation manager."""

import pytest

from repro.jit import AdaptiveCompiler
from repro.profiles.counts import normalize_expr_counts
from tests.conftest import build_while_loop

AB = ("add", ("var", "a"), ("var", "b"))


def fresh_jit(threshold=200, growth=8.0) -> AdaptiveCompiler:
    jit = AdaptiveCompiler(hot_threshold=threshold, recompile_growth=growth)
    jit.register(build_while_loop())
    return jit


class TestTiering:
    def test_starts_interpreted(self):
        jit = fresh_jit()
        result = jit.call("loop", [2, 3, 5])
        assert result.return_value == 25
        assert jit.state("loop").tier == "interpreted"

    def test_becomes_hot_and_compiles(self):
        jit = fresh_jit(threshold=200)
        for _ in range(20):
            jit.call("loop", [2, 3, 10])
        state = jit.state("loop")
        assert state.tier == "optimised"
        assert state.compilations >= 1

    def test_optimised_code_is_faster_and_equal(self):
        jit = fresh_jit(threshold=100)
        cold = jit.call("loop", [2, 3, 40])
        while jit.state("loop").tier != "optimised":
            jit.call("loop", [2, 3, 40])
        hot = jit.call("loop", [2, 3, 40])
        assert hot.observable() == cold.observable()
        assert hot.dynamic_cost < cold.dynamic_cost
        # The invariant was hoisted: one eval instead of 40.
        assert normalize_expr_counts(hot.expr_counts)[AB] == 1

    def test_counters_accumulate_across_calls(self):
        jit = fresh_jit(threshold=10**9)  # never compiles
        jit.call("loop", [2, 3, 4])
        jit.call("loop", [2, 3, 6])
        counters = jit.state("loop").counters
        # prepare() rotated the while loop, so head is the do-while
        # header: n executions per call -> 4 + 6.
        assert counters.node_freq["head"] == 10

    def test_retiering_after_growth(self):
        jit = fresh_jit(threshold=50, growth=2.0)
        for _ in range(40):
            jit.call("loop", [2, 3, 20])
        assert jit.state("loop").compilations >= 2


class TestRegistry:
    def test_duplicate_registration_rejected(self):
        jit = fresh_jit()
        with pytest.raises(ValueError):
            jit.register(build_while_loop())

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveCompiler(hot_threshold=0)

    def test_multiple_functions_independent(self):
        from tests.conftest import build_diamond

        jit = AdaptiveCompiler(hot_threshold=10)
        jit.register(build_while_loop())
        jit.register(build_diamond())
        for _ in range(10):
            jit.call("loop", [1, 1, 10])
        jit.call("diamond", [1, 2, 1])
        assert jit.state("loop").tier == "optimised"
        assert jit.state("diamond").tier == "interpreted"
