"""Correctness properties of the transformations (paper Theorem 6).

* Semantic preservation on arbitrary generated programs and inputs.
* Full availability at original computation points: every occurrence that
  was deleted (turned into a reload) reads a temporary that provably holds
  the expression's value — checked by asserting the transformed program's
  observable behaviour AND by a lexical availability audit of the
  temporary's definitions.
* The output of SSA-based variants is verifiable SSA.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import ProgramSpec, generate_program, random_args
from repro.pipeline import compile_variant, prepare, run_experiment
from repro.profiles.interp import run_function

ALL = ("ssapre", "ssapre-sp", "mc-ssapre", "mc-pre", "ispre")


class TestSemanticPreservation:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=20_000),
        st.booleans(),
    )
    def test_all_variants_preserve_observables(self, seed, fp_flavor):
        spec = ProgramSpec(
            name="sem", seed=seed, max_depth=2, fp_flavor=fp_flavor
        )
        prog = generate_program(spec)
        # run_experiment raises on any observable mismatch.
        run_experiment(
            prog.func,
            random_args(spec, 1),
            random_args(spec, 2),
            variants=ALL,
            validate=True,
        )

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=5_000))
    def test_preservation_on_multiple_inputs(self, seed):
        """The compiled variant must agree with the source on inputs the
        profile has never seen (correctness is input-independent)."""
        spec = ProgramSpec(name="multi", seed=seed, max_depth=2)
        prog = generate_program(spec)
        prepared = prepare(prog.func)
        train = run_function(prepared, random_args(spec, 1))
        compiled = compile_variant(prepared, "mc-ssapre", profile=train.profile)
        for argseed in range(3, 8):
            args = random_args(spec, argseed)
            expected = run_function(prepared, args).observable()
            got = run_function(compiled.func, args).observable()
            assert got == expected, argseed


class TestTemporaryIntegrity:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_pre_temporaries_hold_only_their_class(self, seed):
        """On the SSA output of MC-SSAPRE, every definition of a PRE
        temporary is either a computation of one fixed expression class
        or a phi merging versions of the same temporary.  A reload can
        therefore only ever observe a value of its class — the structural
        half of 'full availability at original computation points'."""
        import copy

        from repro.core.mcssapre.driver import run_mc_ssapre
        from repro.ir.instructions import Assign, BinOp, UnaryOp
        from repro.ir.values import Var
        from repro.ssa.construct import construct_ssa

        spec = ProgramSpec(name="avail", seed=seed, max_depth=2)
        prog = generate_program(spec)
        prepared = prepare(prog.func)
        train = run_function(prepared, random_args(spec, 1))
        ssa = copy.deepcopy(prepared)
        construct_ssa(ssa)
        run_mc_ssapre(ssa, train.profile.nodes_only(), validate=True)

        temp_classes: dict[str, set] = {}
        for block in ssa:
            for phi in block.phis:
                if phi.target.name.startswith("%pre"):
                    for arg in phi.args.values():
                        assert isinstance(arg, Var)
                        assert arg.name == phi.target.name, (
                            f"temp phi {phi} merges a foreign value"
                        )
            for stmt in block.body:
                if isinstance(stmt, Assign) and stmt.target.name.startswith(
                    "%pre"
                ):
                    assert isinstance(stmt.rhs, (BinOp, UnaryOp)), (
                        f"temp def {stmt} is not a computation"
                    )
                    temp_classes.setdefault(stmt.target.name, set()).add(
                        stmt.rhs.class_key()
                    )
        for temp, classes in temp_classes.items():
            assert len(classes) == 1, (
                f"{temp} computes several classes: {classes}"
            )


class TestOutputsAreValid:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=9_999))
    def test_verifier_clean_after_each_variant(self, seed):
        from repro.ir.verifier import verify_function

        spec = ProgramSpec(name="valid", seed=seed, max_depth=2)
        prog = generate_program(spec)
        prepared = prepare(prog.func)
        train = run_function(prepared, random_args(spec, 1))
        for variant in ALL:
            compiled = compile_variant(
                prepared, variant, profile=train.profile, validate=True
            )
            verify_function(compiled.func)
