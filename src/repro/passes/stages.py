"""Concrete pipeline stages wrapping the repository's transforms.

Each stage is a thin :class:`~repro.passes.base.Pass` adapter: the
algorithms stay where they are (``repro.ssa``, ``repro.core``,
``repro.baselines``, ``repro.opt``), the stage contributes the pass
contract — a name, a ``preserves()`` declaration, and cache plumbing.

Preservation notes:

* SSA construction/destruction, the PRE code motion steps, copy
  propagation, DCE, GVN and the three CFG baselines rewrite instructions
  but never blocks or edges, so they preserve ``"cfg"`` (and with it all
  CFG-derived analyses);
* SCCP may fold branches and delete unreachable blocks, so it preserves
  nothing.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.passes.base import PRESERVE_ALL, PRESERVE_CFG, Pass, PassError
from repro.passes.manager import PassContext

_CFG_ONLY = frozenset({PRESERVE_CFG})


def _require_profile(ctx: PassContext, name: str):
    if ctx.profile is None:
        raise PassError(f"pass {name!r} requires an execution profile")
    return ctx.profile


class ConstructSSAPass(Pass):
    name = "construct-ssa"

    def preserves(self) -> frozenset[str]:
        return _CFG_ONLY

    def run(self, func: Function, ctx: PassContext) -> None:
        from repro.ssa.construct import construct_ssa

        construct_ssa(func, cache=ctx.cache)
        ctx.in_ssa = True


class DestructSSAPass(Pass):
    name = "destruct-ssa"

    def preserves(self) -> frozenset[str]:
        return _CFG_ONLY

    def run(self, func: Function, ctx: PassContext) -> None:
        from repro.ssa.destruct import destruct_ssa

        destruct_ssa(func, cache=ctx.cache)
        ctx.in_ssa = False


class SCCPPass(Pass):
    name = "sccp"

    def run(self, func: Function, ctx: PassContext):
        from repro.opt.sccp import sparse_conditional_constant_propagation

        return sparse_conditional_constant_propagation(func, cache=ctx.cache)


class CopyPropagationPass(Pass):
    name = "copyprop"

    def preserves(self) -> frozenset[str]:
        return _CFG_ONLY

    def mutated(self, payload: object | None) -> bool:
        return bool(payload)

    def run(self, func: Function, ctx: PassContext) -> int:
        from repro.opt.copyprop import propagate_copies

        return propagate_copies(func)


class DCEPass(Pass):
    name = "dce"

    def preserves(self) -> frozenset[str]:
        return _CFG_ONLY

    def mutated(self, payload: object | None) -> bool:
        return bool(payload)

    def run(self, func: Function, ctx: PassContext) -> int:
        from repro.opt.dce import eliminate_dead_code

        return eliminate_dead_code(func)


class GVNPass(Pass):
    name = "gvn"

    def preserves(self) -> frozenset[str]:
        return _CFG_ONLY

    def run(self, func: Function, ctx: PassContext):
        from repro.opt.gvn import global_value_numbering

        return global_value_numbering(func, cache=ctx.cache)


class SSAPREPass(Pass):
    """Safe SSAPRE (compile A) or loop-speculative SSAPREsp (compile B).

    ``rounds > 1`` runs the rank-ordered iterative worklist (the stage
    is then named with an ``-iter`` suffix so reports distinguish it).
    """

    def __init__(
        self,
        speculate_loops: bool = False,
        down_safety: str = "oracle",
        rounds: int = 1,
    ):
        self.speculate_loops = speculate_loops
        self.down_safety = down_safety
        self.rounds = rounds
        self.name = "ssapre-sp" if speculate_loops else "ssapre"
        if rounds > 1:
            self.name += "-iter"

    def preserves(self) -> frozenset[str]:
        return _CFG_ONLY

    def mutated(self, payload: object | None) -> bool:
        return payload is None or payload.classes_changed > 0

    def run(self, func: Function, ctx: PassContext):
        from repro.core.ssapre.driver import run_ssapre

        return run_ssapre(
            func,
            speculate_loops=self.speculate_loops,
            validate=ctx.validate,
            down_safety=self.down_safety,
            cache=ctx.cache,
            rounds=self.rounds,
        )


class MCSSAPREPass(Pass):
    """MC-SSAPRE (compile C) — needs node frequencies from the profile.

    ``rounds > 1`` runs the rank-ordered iterative worklist (the stage
    is then named ``mc-ssapre-iter`` so reports distinguish it).
    ``solver`` picks the speculation back end ("mincut", "lospre",
    "auto" — :mod:`repro.core.solvers`); which one actually ran is
    recorded on the driver result and surfaced in the pass report.
    """

    name = "mc-ssapre"

    def __init__(
        self,
        sink_closest: bool = True,
        rounds: int = 1,
        solver: str = "mincut",
    ):
        self.sink_closest = sink_closest
        self.rounds = rounds
        self.solver = solver
        if rounds > 1:
            self.name = "mc-ssapre-iter"

    def preserves(self) -> frozenset[str]:
        return _CFG_ONLY

    def mutated(self, payload: object | None) -> bool:
        return payload is None or payload.classes_changed > 0

    def run(self, func: Function, ctx: PassContext):
        from repro.core.mcssapre.driver import run_mc_ssapre

        profile = _require_profile(ctx, self.name)
        return run_mc_ssapre(
            func,
            profile.nodes_only(),
            validate=ctx.validate,
            sink_closest=self.sink_closest,
            cache=ctx.cache,
            rounds=self.rounds,
            solver=self.solver,
        )


class MCPREBaselinePass(Pass):
    name = "mc-pre"

    def preserves(self) -> frozenset[str]:
        return _CFG_ONLY

    def run(self, func: Function, ctx: PassContext):
        from repro.baselines.mcpre import run_mc_pre

        return run_mc_pre(
            func, _require_profile(ctx, self.name), validate=ctx.validate,
            cache=ctx.cache,
        )


class ISPREBaselinePass(Pass):
    name = "ispre"

    def __init__(self, theta: float = 0.5):
        self.theta = theta

    def preserves(self) -> frozenset[str]:
        return _CFG_ONLY

    def run(self, func: Function, ctx: PassContext):
        from repro.baselines.ispre import run_ispre

        return run_ispre(
            func, _require_profile(ctx, self.name), theta=self.theta,
            validate=ctx.validate, cache=ctx.cache,
        )


class LCMBaselinePass(Pass):
    name = "lcm"

    def preserves(self) -> frozenset[str]:
        return _CFG_ONLY

    def run(self, func: Function, ctx: PassContext):
        from repro.baselines.lcm import run_lcm

        return run_lcm(func, validate=ctx.validate, cache=ctx.cache)


class VerifyPass(Pass):
    """Explicit verification stage (IR + SSA when applicable)."""

    name = "verify"

    def preserves(self) -> frozenset[str]:
        return PRESERVE_ALL

    def run(self, func: Function, ctx: PassContext) -> None:
        from repro.ir.verifier import verify_function

        verify_function(func)
        if ctx.in_ssa:
            from repro.ssa.ssa_verifier import verify_ssa

            verify_ssa(func)
