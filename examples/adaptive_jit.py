#!/usr/bin/env python3
"""Adaptive recompilation with :class:`repro.AdaptiveCompiler`.

The paper's conclusion argues MC-SSAPRE is a natural fit for just-in-time
compilers: block counters are the cheapest kind of profile, and the tiny
EFGs make recompilation fast.  This example runs a service-shaped loop:

1. requests arrive and execute under the profiling interpreter;
2. once the function gets hot, it is recompiled with MC-SSAPRE using the
   accumulated counters;
3. later requests run the optimised code — cheaper, same answers.

Run:  python examples/adaptive_jit.py
"""

from repro import AdaptiveCompiler, FunctionBuilder


def build_service_kernel():
    b = FunctionBuilder("kernel", params=["key", "salt", "rounds"])
    b.block("entry")
    b.copy("h", 0)
    b.copy("i", 0)
    b.jump("head")
    b.block("head")
    b.assign("c", "lt", "i", "rounds")
    b.branch("c", "body", "done")
    b.block("body")
    b.assign("base", "mul", "key", "salt")   # loop-invariant, hot
    b.assign("h", "xor", "h", "base")
    b.assign("h", "add", "h", "i")
    b.assign("m", "and", "h", 1)
    b.branch("m", "odd", "even")
    b.block("odd")
    b.assign("h", "shl", "h", 1)
    b.jump("latch")
    b.block("even")
    b.assign("extra", "mul", "key", "salt")  # partially redundant
    b.assign("h", "add", "h", "extra")
    b.jump("latch")
    b.block("latch")
    b.assign("i", "add", "i", 1)
    b.jump("head")
    b.block("done")
    b.ret("h")
    return b.build()


def main() -> None:
    jit = AdaptiveCompiler(hot_threshold=600)
    jit.register(build_service_kernel())

    requests = [(k, 7, 25 + (k % 9)) for k in range(1, 25)]
    cold_costs, hot_costs = [], []
    for key, salt, rounds in requests:
        state = jit.state("kernel")
        tier_before = state.tier
        result = jit.call("kernel", [key, salt, rounds])
        (cold_costs if tier_before == "interpreted" else hot_costs).append(
            result.dynamic_cost
        )
        if state.tier != tier_before:
            print(
                f"request {len(cold_costs) + len(hot_costs):>2}: "
                f"function went hot -> recompiled with MC-SSAPRE "
                f"(compilations={state.compilations})"
            )

    avg = lambda xs: sum(xs) / len(xs) if xs else 0.0
    print(f"\ninterpreted requests: {len(cold_costs)}  "
          f"avg dynamic cost {avg(cold_costs):.0f}")
    print(f"optimised   requests: {len(hot_costs)}  "
          f"avg dynamic cost {avg(hot_costs):.0f}")
    if hot_costs and cold_costs:
        print(f"per-request saving after tier-up: "
              f"{1 - avg(hot_costs) / avg(cold_costs):.1%}")


if __name__ == "__main__":
    main()
