"""Exact flow-conservation systems over an augmented CFG.

The mathematical core of minimum-coverage profiling (Chen et al.,
arXiv 2208.13907; the spanning-tree idea goes back to Knuth and
Ball–Larus edge profiling).  The CFG is augmented with one virtual node
``⊤`` (represented as :data:`VIRTUAL`): an edge ``⊤ → entry`` carrying
one unit of flow per run and an edge ``exit → ⊤`` returning it.  In the
augmented graph every execution is a circulation, so the set of edge
frequencies consistent with flow conservation is exactly the
*circulation space* — a linear space of dimension ``|E'| − |V'| + 1``
spanned by the fundamental circulations of any spanning tree's chords.

Everything observable is a linear functional of the circulation in
chord coordinates:

* ``t`` — the flow on the virtual entry edge (the number of runs);
* ``m_v`` — the in-flow of block ``v``, which is precisely its
  execution count (the entry block's in-flow includes the virtual
  edge, so its count is ``runs + back-edge traversals``, matching what
  an interpreter observes).

A probe at block ``v`` *measures* ``m_v``.  A probe set ``S`` determines
every block frequency iff every ``m_v`` lies in the row span of
``{t} ∪ {m_u : u ∈ S}`` — a rank condition this module decides exactly
over :class:`fractions.Fraction`, with no numerical slack.  The same
machinery solves the system at reconstruction time, so a placement
certified here can never fail to reconstruct on consistent counts.

CFGs in this code base are small (tens to a few hundred blocks) and the
chord dimension — branches plus loops plus one — is smaller still, so
exact rational elimination costs microseconds, not milliseconds.
"""

from __future__ import annotations

from fractions import Fraction

#: The virtual outside-world node of the augmented flow graph.  ``None``
#: can never collide with a real block label.
VIRTUAL = None


class ReconstructionError(Exception):
    """Raised when probe counts cannot be extended to exact frequencies.

    Two distinct situations end here, both loud by design:

    * the linear system is inconsistent or leaves a requested frequency
      under-determined — the probe set was not certified for this CFG
      (or the counts come from a different program);
    * the unique solution is not a non-negative integer — the counts
      are corrupt (an engine bug, or counters from a different run).
    """


def _dot(row: tuple[int, ...], vec: list[Fraction]) -> Fraction:
    total = Fraction(0)
    for a, b in zip(row, vec):
        if a:
            total += a * b
    return total


class Eliminator:
    """Incremental exact rank oracle over ℚ^d (row echelon, no pivots kept).

    :meth:`add` reduces the incoming row against the stored basis and
    keeps it iff it is independent — the membership test the matroid
    greedy in :mod:`repro.profiles.probes.placement` is built on.
    """

    def __init__(self, d: int) -> None:
        self.d = d
        self._rows: list[list[Fraction]] = []
        self._pivots: list[int] = []

    @property
    def rank(self) -> int:
        return len(self._rows)

    def add(self, row: tuple[int, ...]) -> bool:
        """Insert *row* if independent of the current span; return whether
        the rank grew."""
        work = [Fraction(x) for x in row]
        for stored, pivot in zip(self._rows, self._pivots):
            factor = work[pivot]
            if factor:
                for j in range(pivot, self.d):
                    work[j] -= factor * stored[j]
        for col in range(self.d):
            if work[col]:
                inv = work[col]
                self._rows.append([x / inv for x in work])
                self._pivots.append(col)
                return True
        return False


def solve_affine(
    rows: list[tuple[int, ...]],
    rhs: list[int],
    d: int,
) -> tuple[list[Fraction], list[list[Fraction]]]:
    """Solve ``rows · c = rhs`` exactly; return ``(c0, nullspace basis)``.

    ``c0`` is the particular solution with every free coordinate zero.
    Raises :class:`ReconstructionError` when the system is inconsistent.
    """
    aug = [
        [Fraction(x) for x in row] + [Fraction(r)]
        for row, r in zip(rows, rhs)
    ]
    pivots: list[int] = []
    r = 0
    for col in range(d):
        sel = None
        for i in range(r, len(aug)):
            if aug[i][col]:
                sel = i
                break
        if sel is None:
            continue
        aug[r], aug[sel] = aug[sel], aug[r]
        pivot_value = aug[r][col]
        aug[r] = [x / pivot_value for x in aug[r]]
        for i in range(len(aug)):
            if i != r and aug[i][col]:
                factor = aug[i][col]
                aug[i] = [a - factor * b for a, b in zip(aug[i], aug[r])]
        pivots.append(col)
        r += 1
    for i in range(r, len(aug)):
        if aug[i][d]:
            raise ReconstructionError(
                "probe counts are inconsistent with flow conservation"
            )
    c0 = [Fraction(0)] * d
    for i, col in enumerate(pivots):
        c0[col] = aug[i][d]
    pivot_set = set(pivots)
    basis: list[list[Fraction]] = []
    for free_col in range(d):
        if free_col in pivot_set:
            continue
        vec = [Fraction(0)] * d
        vec[free_col] = Fraction(1)
        for i, col in enumerate(pivots):
            vec[col] = -aug[i][free_col]
        basis.append(vec)
    return c0, basis


class FlowSystem:
    """The augmented flow graph of one CFG, in chord coordinates.

    Built from plain label data (entry, reachable blocks, merged real
    edges, exit blocks) so a pickled
    :class:`~repro.profiles.probes.placement.ProbePlacement` can rebuild
    it deterministically on any process.
    """

    def __init__(
        self,
        entry: str,
        blocks: tuple[str, ...],
        edges: tuple[tuple[str, str], ...],
        exits: tuple[str, ...],
    ) -> None:
        self.entry = entry
        self.blocks = tuple(blocks)
        self.real_edges = tuple(edges)
        self.exits = tuple(exits)
        augmented: list[tuple[object, object]] = list(self.real_edges)
        self.virtual_entry = len(augmented)
        augmented.append((VIRTUAL, entry))
        for exit_label in self.exits:
            augmented.append((exit_label, VIRTUAL))
        self.edges: tuple[tuple[object, object], ...] = tuple(augmented)
        self._build_tree()
        self._build_rows()

    # -- spanning tree and fundamental circulations --------------------
    def _build_tree(self) -> None:
        adjacency: dict[object, list[tuple[int, object]]] = {
            VIRTUAL: [], **{label: [] for label in self.blocks}
        }
        for index, (src, dst) in enumerate(self.edges):
            if src == dst:
                continue  # a self loop can never extend a tree
            adjacency[src].append((index, dst))
            adjacency[dst].append((index, src))

        #: node -> (parent, edge index, +1 if the edge is parent→node).
        parent: dict[object, tuple[object, int, int]] = {}
        depth: dict[object, int] = {VIRTUAL: 0}
        tree_edges: set[int] = set()
        frontier: list[object] = [VIRTUAL]
        while frontier:
            node = frontier.pop()
            for index, other in adjacency[node]:
                if other in depth:
                    continue
                src, _dst = self.edges[index]
                parent[other] = (node, index, 1 if src == node else -1)
                depth[other] = depth[node] + 1
                tree_edges.add(index)
                frontier.append(other)
        # Every reachable block reaches an exit?  Not necessarily — but
        # undirected connectivity to ⊤ only needs a directed path *from*
        # the entry, which reachability guarantees.
        missing = [b for b in self.blocks if b not in depth]
        if missing:  # pragma: no cover - placement filters unreachable
            raise ValueError(f"blocks disconnected from entry: {missing}")

        self.chords = [
            i for i in range(len(self.edges)) if i not in tree_edges
        ]
        #: Per chord: augmented-edge index -> ±1 circulation coefficient.
        self.chi: list[dict[int, int]] = []
        for chord in self.chords:
            src, dst = self.edges[chord]
            cycle: dict[int, int] = {chord: 1}
            if src != dst:
                # Close the cycle with the tree path dst → … → src.
                a, b = dst, src
                while depth[a] > depth[b]:
                    up, index, orient = parent[a]
                    cycle[index] = cycle.get(index, 0) - orient
                    a = up
                while depth[b] > depth[a]:
                    up, index, orient = parent[b]
                    cycle[index] = cycle.get(index, 0) + orient
                    b = up
                while a != b:
                    up_a, index_a, orient_a = parent[a]
                    cycle[index_a] = cycle.get(index_a, 0) - orient_a
                    a = up_a
                    up_b, index_b, orient_b = parent[b]
                    cycle[index_b] = cycle.get(index_b, 0) + orient_b
                    b = up_b
            self.chi.append({k: v for k, v in cycle.items() if v})

    # -- measurement rows ----------------------------------------------
    def _build_rows(self) -> None:
        d = len(self.chords)
        in_edges: dict[object, list[int]] = {label: [] for label in self.blocks}
        for index, (_src, dst) in enumerate(self.edges):
            if dst is not VIRTUAL:
                in_edges[dst].append(index)
        self.node_rows: dict[str, tuple[int, ...]] = {}
        for label in self.blocks:
            row = [0] * d
            for index in in_edges[label]:
                for j, cycle in enumerate(self.chi):
                    coeff = cycle.get(index)
                    if coeff:
                        row[j] += coeff
            self.node_rows[label] = tuple(row)
        self.t_row = tuple(
            cycle.get(self.virtual_entry, 0) for cycle in self.chi
        )
        self.dimension = d

    # -- reconstruction -------------------------------------------------
    def solve(
        self,
        probes: tuple[str, ...],
        probe_counts,
        runs: int,
    ) -> tuple[dict[str, int], dict[tuple[str, str], int] | None]:
        """Exact node frequencies (and, when unique, edge frequencies).

        ``probe_counts`` maps probed labels to observed execution counts;
        missing labels read as 0 (a probe that never fired).  Raises
        :class:`ReconstructionError` on inconsistent, under-determined or
        non-integral systems — never a silently wrong profile.
        """
        rows = [self.t_row] + [self.node_rows[v] for v in probes]
        rhs = [runs] + [int(probe_counts.get(v, 0)) for v in probes]
        c0, basis = solve_affine(rows, rhs, self.dimension)

        node_freq: dict[str, int] = {}
        for label in self.blocks:
            row = self.node_rows[label]
            for vec in basis:
                if _dot(row, vec):
                    raise ReconstructionError(
                        f"block {label!r} is under-determined by probes "
                        f"{list(probes)!r}"
                    )
            value = _dot(row, c0)
            if value.denominator != 1 or value < 0:
                raise ReconstructionError(
                    f"block {label!r} reconstructed to {value}, not a "
                    "non-negative integer: corrupt probe counts"
                )
            node_freq[label] = int(value)

        edge_freq: dict[tuple[str, str], int] | None = {}
        for index, (src, dst) in enumerate(self.real_edges):
            free = any(
                any(
                    cycle.get(index, 0) and vec[j]
                    for j, cycle in enumerate(self.chi)
                )
                and _dot(
                    tuple(c.get(index, 0) for c in self.chi), vec
                )
                for vec in basis
            )
            if free:
                edge_freq = None
                break
            value = _dot(tuple(c.get(index, 0) for c in self.chi), c0)
            if value.denominator != 1 or value < 0:
                raise ReconstructionError(
                    f"edge {(src, dst)!r} reconstructed to {value}, not a "
                    "non-negative integer: corrupt probe counts"
                )
            if value:
                edge_freq[(src, dst)] = int(value)
        return node_freq, edge_freq
