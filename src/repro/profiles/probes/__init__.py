"""Minimum-coverage profiling: optimal probe placement plus exact
flow-conservation count reconstruction.

See ``docs/PROFILING.md`` for the design.  The subsystem has three
layers, importable piecemeal:

* :mod:`~repro.profiles.probes.flowsys` — the augmented-CFG circulation
  space and exact rational linear algebra;
* :mod:`~repro.profiles.probes.placement` — the matroid-greedy minimum
  probe set (minimum-size *and* minimum-cost under a training profile),
  with loud refusal outside the certified envelope;
* :mod:`~repro.profiles.probes.reconstruct` — probe counts back to a
  full, bit-exact node-frequency profile.

:mod:`~repro.profiles.probes.runners` bundles them into one-call sparse
execution with automatic full-counting fallback.
"""

from repro.profiles.probes.flowsys import FlowSystem, ReconstructionError
from repro.profiles.probes.placement import (
    MAX_BLOCKS,
    PlacementError,
    ProbePlacement,
    REFUSAL_REASONS,
    cfg_shape,
    place_probes,
)
from repro.profiles.probes.reconstruct import reconstruct_profile
from repro.profiles.probes.runners import (
    ProbedRun,
    run_probed,
    try_place_probes,
)

__all__ = [
    "FlowSystem",
    "MAX_BLOCKS",
    "PlacementError",
    "ProbePlacement",
    "ProbedRun",
    "REFUSAL_REASONS",
    "ReconstructionError",
    "cfg_shape",
    "place_probes",
    "reconstruct_profile",
    "run_probed",
    "try_place_probes",
]
