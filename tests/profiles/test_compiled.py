"""Differential parity: compiled back end vs the reference interpreter.

The contract is *bit-identical* :class:`RunResult` data — same return
value, output trace, profile, dynamic cost, per-expression counts and
step count — plus :class:`InterpreterError` parity (same error, same
message, at the same step budget).  The property is checked over a
derandomized seeded generator corpus in both fuzz shapes, with trapping
operators enabled, so this is the tier-1 pin of the differential test
the check driver runs at scale.
"""

import pytest

from repro.bench.generator import generate_program
from repro.check.driver import case_inputs, spec_for_shape
from repro.ir.builder import FunctionBuilder
from repro.passes.cache import AnalysisCache
from repro.passes.compiler import compile as compile_func
from repro.pipeline import prepare
from repro.profiles.compiled import (
    compile_function,
    run_compiled,
)
from repro.profiles.interp import InterpreterError, run_function

MAX_STEPS = 250_000
SEEDS = range(12)
SHAPES = ("cint", "cfp", "mem")


def assert_bit_identical(ref, got):
    assert got.return_value == ref.return_value
    assert got.output == ref.output
    assert dict(got.profile.node_freq) == dict(ref.profile.node_freq)
    assert dict(got.profile.edge_freq) == dict(ref.profile.edge_freq)
    assert got.dynamic_cost == ref.dynamic_cost
    assert dict(got.expr_counts) == dict(ref.expr_counts)
    assert got.steps == ref.steps


class TestGeneratorCorpus:
    """Derandomized property over the seeded fuzz corpus (all shapes,
    trapping operators on)."""

    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_prepared_parity(self, shape, seed):
        spec = spec_for_shape(shape, seed)
        prepared = prepare(generate_program(spec).func)
        program = compile_function(prepared)
        for args in case_inputs(spec):
            ref = run_function(prepared, args, max_steps=MAX_STEPS)
            got = program.run(args, max_steps=MAX_STEPS)
            assert_bit_identical(ref, got)

    @pytest.mark.parametrize("variant", ["mc-ssapre", "ssapre", "lcm"])
    def test_optimized_variant_parity(self, variant):
        spec = spec_for_shape("cint", 3)
        prepared = prepare(generate_program(spec).func)
        inputs = case_inputs(spec)
        profile = run_function(
            prepared, inputs[0], max_steps=MAX_STEPS
        ).profile
        out = compile_func(prepared, variant, profile, validate=True)
        for args in inputs:
            ref = run_function(out.func, args, max_steps=MAX_STEPS)
            got = run_compiled(
                out.func, args, max_steps=MAX_STEPS, cache=out.cache
            )
            assert_bit_identical(ref, got)


class TestErrorParity:
    def _diamond_with_partial_def(self):
        # "maybe" is assigned on only one arm of the diamond, so reading
        # it afterwards is defined iff the branch went left.
        b = FunctionBuilder("partial", params=["p"])
        b.block("entry")
        b.branch("p", "left", "right")
        b.block("left")
        b.assign("maybe", "add", "p", 1)
        b.jump("join")
        b.block("right")
        b.jump("join")
        b.block("join")
        b.copy("x", "maybe")
        b.ret("x")
        return prepare(b.build(), restructure=False)

    def test_arity_error_matches(self):
        func = self._diamond_with_partial_def()
        with pytest.raises(InterpreterError) as ref_exc:
            run_function(func, [])
        with pytest.raises(InterpreterError) as got_exc:
            run_compiled(func, [])
        assert str(got_exc.value) == str(ref_exc.value)

    def test_undefined_read_matches(self):
        func = self._diamond_with_partial_def()
        # Taken branch: defined on both engines, identical results.
        assert_bit_identical(
            run_function(func, [1]), run_compiled(func, [1])
        )
        # Fallthrough: both engines raise the same message.
        with pytest.raises(InterpreterError) as ref_exc:
            run_function(func, [0])
        with pytest.raises(InterpreterError) as got_exc:
            run_compiled(func, [0])
        assert "read of undefined variable" in str(ref_exc.value)
        assert str(got_exc.value) == str(ref_exc.value)

    @pytest.mark.parametrize("budget", [1, 7, 50, 173, MAX_STEPS])
    def test_step_budget_parity(self, budget):
        spec = spec_for_shape("cfp", 1)
        prepared = prepare(generate_program(spec).func)
        args = case_inputs(spec)[0]
        try:
            ref = run_function(prepared, args, max_steps=budget)
            ref_outcome = ("ok", ref)
        except InterpreterError as exc:
            ref_outcome = ("raise", str(exc))
        try:
            got = run_compiled(prepared, args, max_steps=budget)
            got_outcome = ("ok", got)
        except InterpreterError as exc:
            got_outcome = ("raise", str(exc))
        assert got_outcome[0] == ref_outcome[0]
        if ref_outcome[0] == "raise":
            assert got_outcome[1] == ref_outcome[1]
            assert f"exceeded {budget} interpreted steps" in ref_outcome[1]
        else:
            assert_bit_identical(ref_outcome[1], got_outcome[1])


class TestMemoryParity:
    """Array semantics must agree bit-for-bit: initial contents, in-place
    stores, and the out-of-bounds trap — message included."""

    def _indexed(self):
        # `load A, i` / `store A, i, v` with the index coming straight
        # from a parameter: any OOB input traps at runtime.
        b = FunctionBuilder("idx", params=["i"])
        b.array("A", 8)
        b.block("entry")
        b.load("x", "A", "i")
        b.assign("y", "add", "x", 1)
        b.store("A", "i", "y")
        b.load("z", "A", "i")
        b.ret("z")
        return prepare(b.build())

    def test_in_bounds_parity_and_store_visibility(self):
        from repro.ir.memory import initial_array

        func = self._indexed()
        for i in range(8):
            ref = run_function(func, [i])
            got = run_compiled(func, [i])
            assert_bit_identical(ref, got)
            assert ref.return_value == initial_array("A", 8)[i] + 1

    def test_runs_do_not_leak_array_state(self):
        # Stores mutate in place *within* a run; every run starts from
        # the deterministic initial contents, on both engines.
        func = self._indexed()
        first = run_function(func, [3])
        assert_bit_identical(first, run_function(func, [3]))
        assert_bit_identical(first, run_compiled(func, [3]))
        assert_bit_identical(first, run_compiled(func, [3]))

    @pytest.mark.parametrize("index", [-1, 8, 1 << 40])
    def test_out_of_bounds_trap_parity(self, index):
        func = self._indexed()
        with pytest.raises(InterpreterError) as ref_exc:
            run_function(func, [index])
        with pytest.raises(InterpreterError) as got_exc:
            run_compiled(func, [index])
        assert str(got_exc.value) == str(ref_exc.value)
        assert "A" in str(ref_exc.value)

    def test_store_trap_parity(self):
        b = FunctionBuilder("st", params=["i"])
        b.array("A", 4)
        b.block("entry")
        b.store("A", "i", 7)
        b.ret(0)
        func = prepare(b.build())
        with pytest.raises(InterpreterError) as ref_exc:
            run_function(func, [9])
        with pytest.raises(InterpreterError) as got_exc:
            run_compiled(func, [9])
        assert str(got_exc.value) == str(ref_exc.value)

    def test_optimized_memory_variant_parity(self):
        spec = spec_for_shape("mem", 5)
        prepared = prepare(generate_program(spec).func)
        inputs = case_inputs(spec)
        profile = run_function(
            prepared, inputs[0], max_steps=MAX_STEPS
        ).profile
        for variant in ("mc-ssapre", "ssapre", "lcm"):
            out = compile_func(prepared, variant, profile, validate=True)
            for args in inputs:
                ref = run_function(out.func, args, max_steps=MAX_STEPS)
                got = run_compiled(
                    out.func, args, max_steps=MAX_STEPS, cache=out.cache
                )
                assert_bit_identical(ref, got)


class TestCaching:
    def test_cache_memoises_lowering(self, straightline):
        cache = AnalysisCache(straightline)
        from repro.passes.analyses import COMPILED_ANALYSIS

        run_compiled(straightline, [2, 3], cache=cache)
        first = cache.peek(COMPILED_ANALYSIS)
        assert first is not None
        run_compiled(straightline, [4, 5], cache=cache)
        assert cache.peek(COMPILED_ANALYSIS) is first

    def test_code_mutation_invalidates(self, straightline):
        cache = AnalysisCache(straightline)
        from repro.passes.analyses import COMPILED_ANALYSIS

        before = run_compiled(straightline, [2, 3], cache=cache)
        first = cache.peek(COMPILED_ANALYSIS)
        straightline.mark_code_mutated()
        after = run_compiled(straightline, [2, 3], cache=cache)
        assert cache.peek(COMPILED_ANALYSIS) is not first
        assert_bit_identical(before, after)
