"""Smoke tests: every example script must run and tell its story."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "FRG for add(a, b)" in out
    assert "min-cut value: 10" in out
    assert "speculation paid off" in out


def test_fdo_speculation():
    out = run_example("fdo_speculation.py")
    assert "Correlated reference input" in out
    assert "Anti-correlated reference input" in out
    # The mispredicted profile must genuinely lose.
    assert "-" in out.rsplit("'speedup' of C over A:", 1)[1]


def test_textual_ir_jit():
    out = run_example("textual_ir_jit.py")
    assert "x*k evaluations" in out
    assert "-> 1" in out
    assert "after (MC-SSAPRE" in out


@pytest.mark.slow
def test_spec_mini_suite():
    out = run_example("spec_mini_suite.py")
    assert "Mini suite" in out
    assert "EFGs formed" in out


def test_adaptive_jit():
    out = run_example("adaptive_jit.py")
    assert "went hot" in out
    assert "per-request saving after tier-up" in out
