"""Two-tier artifact store: LRU order, disk round-trip, corruption."""

import pickle

from repro.serve.store import (
    ARTIFACT_SCHEMA,
    ArtifactStore,
    DiskStore,
    MemoryStore,
)

from tests.conftest import build_diamond, build_straightline, build_while_loop
from tests.serve.conftest import make_artifact


def _three_artifacts():
    return [
        make_artifact(build_diamond()),
        make_artifact(build_while_loop()),
        make_artifact(build_straightline()),
    ]


class TestMemoryStore:
    def test_lru_eviction_order(self):
        (ka, a), (kb, b), (kc, c) = _three_artifacts()
        store = MemoryStore(max_entries=2)
        store.put(ka, a)
        store.put(kb, b)
        assert store.get(ka) is a  # refresh a: b is now least recent
        evicted = store.put(kc, c)
        assert evicted == [kb]
        assert store.get(kb) is None
        assert store.get(ka) is a
        assert store.get(kc) is c
        assert store.evictions == 1

    def test_byte_bound_evicts_oldest(self):
        (ka, a), (kb, b), _ = _three_artifacts()
        store = MemoryStore(
            max_entries=10, max_bytes=a.nbytes() + b.nbytes() - 1
        )
        store.put(ka, a)
        assert store.put(kb, b) == [ka]
        assert store.bytes_used() == b.nbytes()

    def test_oversized_artifact_still_caches(self):
        (ka, a), _, _ = _three_artifacts()
        store = MemoryStore(max_entries=10, max_bytes=1)
        assert store.put(ka, a) == []
        assert store.get(ka) is a

    def test_reput_same_key_does_not_grow(self):
        (ka, a), _, _ = _three_artifacts()
        store = MemoryStore(max_entries=4)
        store.put(ka, a)
        store.put(ka, a)
        assert len(store) == 1
        assert store.bytes_used() == a.nbytes()


class TestDiskStore:
    def test_round_trip_executes_identically(self, tmp_path, diamond_artifact):
        key, artifact = diamond_artifact
        disk = DiskStore(tmp_path)
        disk.put(key, artifact)
        loaded = DiskStore(tmp_path).get(key)
        assert loaded is not None
        assert loaded.key == key
        assert loaded.variant == artifact.variant
        args = [4, 5, 1]
        assert loaded.program.run(args).observable() == (
            artifact.program.run(args).observable()
        )
        assert loaded.program.run(args).dynamic_cost == (
            artifact.program.run(args).dynamic_cost
        )

    def test_truncated_file_is_a_miss_not_a_crash(
        self, tmp_path, diamond_artifact
    ):
        key, artifact = diamond_artifact
        disk = DiskStore(tmp_path)
        disk.put(key, artifact)
        path = disk.path(key)
        path.write_bytes(path.read_bytes()[: 20])
        assert disk.get(key) is None
        assert disk.corrupt == 1
        assert not path.exists()  # quarantined out of the way
        assert disk.get(key) is None  # stays a clean miss

    def test_garbage_file_is_a_miss(self, tmp_path, diamond_artifact):
        key, artifact = diamond_artifact
        disk = DiskStore(tmp_path)
        disk.put(key, artifact)
        disk.path(key).write_bytes(b"not a pickle at all")
        assert disk.get(key) is None
        assert disk.corrupt == 1

    def test_wrong_schema_is_a_miss(self, tmp_path, diamond_artifact):
        key, artifact = diamond_artifact
        artifact.schema = ARTIFACT_SCHEMA + 1
        disk = DiskStore(tmp_path)
        disk.put(key, artifact)
        assert disk.get(key) is None
        assert disk.corrupt == 1

    def test_wrong_key_in_file_is_a_miss(self, tmp_path, diamond_artifact):
        key, artifact = diamond_artifact
        disk = DiskStore(tmp_path)
        disk.put(key, artifact)
        hijack = "f" * len(key)
        disk.path(hijack).parent.mkdir(parents=True, exist_ok=True)
        disk.path(hijack).write_bytes(pickle.dumps(artifact))
        assert disk.get(hijack) is None
        assert disk.corrupt == 1

    def test_missing_key_is_a_plain_miss(self, tmp_path):
        disk = DiskStore(tmp_path)
        assert disk.get("0" * 64) is None
        assert disk.corrupt == 0

    def test_keys_listing(self, tmp_path):
        disk = DiskStore(tmp_path)
        pairs = _three_artifacts()
        for key, artifact in pairs:
            disk.put(key, artifact)
        assert disk.keys() == sorted(key for key, _ in pairs)


class TestArtifactStore:
    def test_disk_hit_promotes_to_memory(self, tmp_path, diamond_artifact):
        key, artifact = diamond_artifact
        ArtifactStore.with_disk(tmp_path).put(key, artifact)
        fresh = ArtifactStore.with_disk(tmp_path)  # models a restart
        _, tier = fresh.get(key)
        assert tier == "disk"
        _, tier = fresh.get(key)
        assert tier == "memory"

    def test_memory_only_store_misses_cleanly(self, diamond_artifact):
        key, artifact = diamond_artifact
        store = ArtifactStore()
        assert store.get(key) == (None, None)
        store.put(key, artifact)
        got, tier = store.get(key)
        assert got is artifact
        assert tier == "memory"
        assert store.disk_corrupt == 0

    def test_corruption_counter_surfaces(self, tmp_path, diamond_artifact):
        key, artifact = diamond_artifact
        store = ArtifactStore.with_disk(tmp_path)
        store.put(key, artifact)
        store.disk.path(key).write_bytes(b"garbage")
        fresh = ArtifactStore.with_disk(tmp_path)
        assert fresh.get(key) == (None, None)
        assert fresh.disk_corrupt == 1


class TestMultiprocessWrites:
    """The disk tier under the cluster's write pattern: several worker
    *processes* storing the same keys concurrently.  Atomic-rename puts
    mean a reader never sees a torn pickle — no corruption, no
    quarantine, every read is a complete artifact."""

    WRITER = """
import sys
from repro.lang.parser import parse_function
from repro.pipeline import PipelineConfig, prepare
from repro.serve.keys import artifact_key
from repro.serve.server import build_artifact
from repro.serve.store import DiskStore

root, source, variant, rounds_str = sys.argv[1:5]
disk = DiskStore(root)
prepared = prepare(parse_function(source))
config = PipelineConfig(variant=variant)
key = artifact_key(prepared, config, engine="compiled")
artifact = build_artifact(prepared, config, key=key)
print("ready", flush=True)
sys.stdin.readline()  # barrier: the parent releases all writers at once
for _ in range(int(rounds_str)):
    disk.put(key, artifact)
print("done", flush=True)
"""

    def test_concurrent_same_key_writers_never_corrupt(self, tmp_path):
        import subprocess
        import sys

        from repro.ir.printer import format_function

        source = format_function(build_diamond())
        writers = [
            subprocess.Popen(
                [
                    sys.executable, "-c", self.WRITER,
                    str(tmp_path), source, "ssapre", "25",
                ],
                stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True,
            )
            for _ in range(4)
        ]
        for proc in writers:
            assert proc.stdout.readline().strip() == "ready"
        for proc in writers:  # release the barrier
            proc.stdin.write("go\n")
            proc.stdin.flush()

        # Read continuously while the writers race each other.
        disk = DiskStore(tmp_path)
        keys_seen = set()
        while any(proc.poll() is None for proc in writers):
            for key in disk.keys():
                got = disk.get(key)
                if got is not None:
                    keys_seen.add(key)
        for proc in writers:
            assert proc.stdout.readline().strip() == "done"
            assert proc.wait() == 0

        assert disk.corrupt == 0
        assert len(keys_seen) == 1
        (key,) = keys_seen
        final = disk.get(key)
        assert final is not None and final.key == key
        # No quarantined files, no leaked temp files.
        leftovers = [
            p.name for p in tmp_path.rglob("*")
            if p.is_file() and not p.name.endswith(DiskStore.SUFFIX)
        ]
        assert leftovers == []
