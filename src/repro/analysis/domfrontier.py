"""Dominance frontiers and iterated dominance frontiers.

Computed with the Cytron et al. bottom-up formula expressed via the
Cooper–Harvey–Kennedy "walk up from each join predecessor" trick, which
needs only immediate dominators.
"""

from __future__ import annotations

from repro.analysis.dominators import DominatorTree
from repro.ir.cfg import CFG


def dominance_frontiers(cfg: CFG, domtree: DominatorTree) -> dict[str, set[str]]:
    """Map each reachable block to its dominance frontier.

    Frontiers are restricted to *join* nodes (>= 2 predecessors), the
    standard optimisation for SSA construction: a single-predecessor block
    can never need a phi, so the textbook frontier members it would
    contribute (e.g. a straight-line self-loop) are deliberately omitted.
    """
    frontiers: dict[str, set[str]] = {label: set() for label in domtree.rpo}
    for label in domtree.rpo:
        preds = [p for p in cfg.predecessors(label) if p in frontiers]
        if len(preds) < 2:
            continue
        target_idom = domtree.idom[label]
        for pred in preds:
            runner: str | None = pred
            while runner is not None and runner != target_idom:
                frontiers[runner].add(label)
                runner = domtree.idom[runner]
    return frontiers


def iterated_dominance_frontier(
    frontiers: dict[str, set[str]], seeds: set[str]
) -> set[str]:
    """DF+ — the closure of dominance frontiers over a seed set of blocks."""
    result: set[str] = set()
    worklist = [label for label in seeds if label in frontiers]
    while worklist:
        label = worklist.pop()
        for frontier_block in frontiers[label]:
            if frontier_block not in result:
                result.add(frontier_block)
                worklist.append(frontier_block)
    return result
