"""Serving metrics: counters and latency histograms, exported as JSON.

One :class:`ServeMetrics` instance per service.  Everything is guarded
by one lock (requests touch several counters and a histogram each; a
torn read would make the CI hit-rate gate flaky), and
:meth:`ServeMetrics.to_dict` takes a consistent snapshot under the same
lock.  The schema is pinned by ``tests/serve/test_metrics.py`` and
documented in ``docs/SERVING.md``.
"""

from __future__ import annotations

import math
import threading

#: Version of the exported metrics JSON layout.
#: 2: adaptation counters (live profiles, drift, hot swaps, tiering).
#: 3: cluster counters (plan cache, cross-process single-flight) and
#:    per-histogram p50/p95/p99 summaries.
#: 4: minimum-coverage profiling counters (live_probe_samples,
#:    profile_reconstructions) — which tier of profiling served a
#:    request (repro.profiles.probes).
METRICS_SCHEMA = 4

#: The percentiles every histogram export carries, as fractions.
PERCENTILES = (0.5, 0.95, 0.99)

#: Histogram bucket upper bounds in seconds (log-spaced, the usual
#: serving-latency decades), plus an implicit +inf bucket.
LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Counter names, in export order.  Kept in one tuple so the exporter,
#: the reset path and the schema test cannot drift apart.
COUNTERS = (
    "requests",          # every request the service accepted
    "hits_memory",       # artifact served from the in-memory LRU
    "hits_disk",         # artifact served from the on-disk store
    "misses",            # artifact had to be built
    "coalesced",         # request waited on another request's compile
    "compiles",          # artifact builds that ran a real compile
    "compile_failures",  # compiles that raised (artifact degraded)
    "degraded",          # requests served by the reference interpreter
    "timeouts",          # requests that exceeded their deadline
    "errors",            # requests that failed outright (bad input, run error)
    "evictions",         # in-memory LRU evictions
    "disk_corrupt",      # on-disk artifacts dropped as unreadable
    # -- adaptation tier (repro.serve.adapt) ---------------------------
    "live_samples",      # served runs folded into a live profile
    "tier_interp",       # requests served by the tier-0 interpreter
    "drift_events",      # drift-detector firings (live vs compile profile)
    "recompiles",        # background builds the adaptation tier scheduled
    "hot_swaps",         # artifact bindings atomically replaced
    "tier_promotions",   # interpreter -> compiled-artifact promotions
    "tier_demotions",    # compiled-artifact -> interpreter demotions
    "rollbacks",         # hot swaps undone to the previous artifact
    # -- cluster tier (repro.serve.cluster) ----------------------------
    "plan_hits",         # requests answered from the per-worker plan cache
    "lock_rehydrates",   # cross-process race losers served from disk
    "lock_breaks",       # stale cross-process build locks broken
    # -- minimum-coverage profiling (repro.profiles.probes) ------------
    "live_probe_samples",       # live-profile folds fed by sparse probes
    "profile_reconstructions",  # flow-conservation solves of probe counts
)

__all__ = [
    "COUNTERS",
    "LATENCY_BUCKETS",
    "METRICS_SCHEMA",
    "PERCENTILES",
    "Histogram",
    "ServeMetrics",
    "merge_histogram_dicts",
    "merge_metrics_dicts",
    "percentile_from_histogram_dict",
    "sample_percentile",
]


class Histogram:
    """A fixed-bucket latency histogram (seconds).

    Not thread-safe on its own; :class:`ServeMetrics` serialises access.
    """

    def __init__(self, bounds: tuple[float, ...] = LATENCY_BUCKETS) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: the +inf bucket
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)
        for i, bound in enumerate(self.bounds):
            if seconds <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th quantile (``q`` in ``[0, 1]``) from buckets.

        Pinned interpolation rule (tests/serve/test_metrics.py):

        * empty histogram -> ``0.0``;
        * the target rank is ``q * count``; the answer lives in the first
          bucket whose cumulative count reaches it;
        * within a finite bucket ``(lower, upper]`` (the first bucket's
          lower bound is ``0.0``) interpolate linearly by the fraction of
          the bucket's observations below the target rank;
        * a target that lands in the +inf bucket resolves to ``max``,
          the largest value actually observed.
        """
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        lower = 0.0
        for bound, n in zip(self.bounds, self.counts):
            if cumulative + n >= target and n > 0:
                fraction = (target - cumulative) / n
                fraction = min(max(fraction, 0.0), 1.0)
                return lower + fraction * (bound - lower)
            cumulative += n
            lower = bound
        return self.max

    def to_dict(self) -> dict:
        buckets = {f"le_{bound:g}": n for bound, n in zip(self.bounds, self.counts)}
        buckets["le_inf"] = self.counts[-1]
        return {
            "count": self.count,
            "sum_s": round(self.total, 6),
            "min_s": round(self.min, 6) if self.count else 0.0,
            "max_s": round(self.max, 6),
            "mean_s": round(self.total / self.count, 6) if self.count else 0.0,
            "percentiles": {
                f"p{int(q * 100)}": round(self.percentile(q), 6)
                for q in PERCENTILES
            },
            "buckets": buckets,
        }


class ServeMetrics:
    """Thread-safe counters + histograms for one compile service."""

    #: Histogram names, in export order.
    HISTOGRAMS = ("compile_s", "execute_s", "request_s")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters = dict.fromkeys(COUNTERS, 0)
        self._histograms = {name: Histogram() for name in self.HISTOGRAMS}

    # ------------------------------------------------------------------
    def inc(self, counter: str, amount: int = 1) -> None:
        if counter not in self._counters:
            raise KeyError(f"unknown counter {counter!r}; known: {COUNTERS}")
        with self._lock:
            self._counters[counter] += amount

    def observe(self, histogram: str, seconds: float) -> None:
        hist = self._histograms.get(histogram)
        if hist is None:
            raise KeyError(
                f"unknown histogram {histogram!r}; known: {self.HISTOGRAMS}"
            )
        with self._lock:
            hist.observe(seconds)

    def get(self, counter: str) -> int:
        with self._lock:
            return self._counters[counter]

    # ------------------------------------------------------------------
    def hit_rate(self) -> float:
        """Fraction of requests that never waited on a compile of their own.

        Memory hits, disk hits and coalesced requests all count: none of
        them paid for a compile, which is the cost the cache exists to
        amortise.  0.0 before any request.
        """
        with self._lock:
            hits = (
                self._counters["hits_memory"]
                + self._counters["hits_disk"]
                + self._counters["coalesced"]
            )
            requests = self._counters["requests"]
        return hits / requests if requests else 0.0

    def to_dict(self) -> dict:
        """A consistent JSON-safe snapshot of every counter and histogram."""
        with self._lock:
            counters = dict(self._counters)
            histograms = {
                name: hist.to_dict() for name, hist in self._histograms.items()
            }
        hits = counters["hits_memory"] + counters["hits_disk"] + counters["coalesced"]
        requests = counters["requests"]
        return {
            "schema": METRICS_SCHEMA,
            "counters": counters,
            "hit_rate": round(hits / requests, 4) if requests else 0.0,
            "histograms": histograms,
        }


# ----------------------------------------------------------------------
# Cluster-side aggregation.  Workers live in separate processes, so the
# front end only ever sees their exported ``to_dict`` JSON — the merge
# helpers below therefore operate on that form, not on live objects.

def _bucket_bound(key: str) -> float:
    return math.inf if key == "le_inf" else float(key[3:])


def percentile_from_histogram_dict(hist: dict, q: float) -> float:
    """The pinned :meth:`Histogram.percentile` rule, on an exported dict."""
    count = hist["count"]
    if count == 0:
        return 0.0
    items = sorted(hist["buckets"].items(), key=lambda kv: _bucket_bound(kv[0]))
    target = q * count
    cumulative = 0
    lower = 0.0
    for key, n in items:
        bound = _bucket_bound(key)
        if cumulative + n >= target and n > 0:
            if math.isinf(bound):
                return hist["max_s"]
            fraction = min(max((target - cumulative) / n, 0.0), 1.0)
            return lower + fraction * (bound - lower)
        cumulative += n
        lower = bound
    return hist["max_s"]


def merge_histogram_dicts(dicts: list[dict]) -> dict:
    """Merge exported histograms with identical bucket layouts."""
    if not dicts:
        return Histogram().to_dict()
    keys = list(dicts[0]["buckets"])
    for other in dicts[1:]:
        if list(other["buckets"]) != keys:
            raise ValueError("cannot merge histograms with different buckets")
    buckets = {
        key: sum(d["buckets"][key] for d in dicts) for key in keys
    }
    count = sum(d["count"] for d in dicts)
    total = sum(d["sum_s"] for d in dicts)
    nonempty = [d for d in dicts if d["count"]]
    merged = {
        "count": count,
        "sum_s": round(total, 6),
        "min_s": min((d["min_s"] for d in nonempty), default=0.0),
        "max_s": max((d["max_s"] for d in dicts), default=0.0),
        "mean_s": round(total / count, 6) if count else 0.0,
        "buckets": buckets,
    }
    merged["percentiles"] = {
        f"p{int(q * 100)}": round(percentile_from_histogram_dict(merged, q), 6)
        for q in PERCENTILES
    }
    # Export-order parity with Histogram.to_dict: percentiles precede buckets.
    merged["buckets"] = merged.pop("buckets")
    return merged


def merge_metrics_dicts(dicts: list[dict]) -> dict:
    """Merge per-worker ``ServeMetrics.to_dict`` exports into one snapshot.

    Counters sum, histograms merge bucket-wise (so the cluster-wide
    percentiles come from the union of every worker's observations), and
    ``hit_rate`` is recomputed from the merged counters.
    """
    if not dicts:
        return dict(ServeMetrics().to_dict(), workers=0)
    for d in dicts:
        if d["schema"] != METRICS_SCHEMA:
            raise ValueError(
                f"cannot merge metrics schema {d['schema']} "
                f"(expected {METRICS_SCHEMA})"
            )
    counters = {
        name: sum(d["counters"].get(name, 0) for d in dicts) for name in COUNTERS
    }
    histograms = {
        name: merge_histogram_dicts([d["histograms"][name] for d in dicts])
        for name in ServeMetrics.HISTOGRAMS
    }
    hits = counters["hits_memory"] + counters["hits_disk"] + counters["coalesced"]
    requests = counters["requests"]
    return {
        "schema": METRICS_SCHEMA,
        "workers": len(dicts),
        "counters": counters,
        "hit_rate": round(hits / requests, 4) if requests else 0.0,
        "histograms": histograms,
    }


def sample_percentile(values: list[float], q: float) -> float:
    """Exact ``q``-th quantile of raw samples (``q`` in ``[0, 1]``).

    Pinned rule: sort ascending, take the linearly interpolated value at
    rank ``q * (n - 1)`` (the classic "linear" / numpy default rule).
    Used by the load generator on recorded per-request latencies, where
    the raw samples are available and bucketing would lose precision.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = q * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] + fraction * (ordered[high] - ordered[low])
