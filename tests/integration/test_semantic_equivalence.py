"""The heavyweight semantic-equivalence sweep.

Random programs x all PRE variants x several inputs, each checked for
identical observable behaviour (return value + output trace).  The
per-case work is done by run_experiment, which raises on mismatch.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import (
    ProgramSpec,
    generate_program,
    perturbed_args,
    random_args,
)
from repro.pipeline import run_experiment

ALL = ("ssapre", "ssapre-sp", "mc-ssapre", "mc-pre", "ispre")


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=100_000),
    st.booleans(),
    st.booleans(),
)
def test_equivalence_sweep(seed, fp_flavor, restructure):
    spec = ProgramSpec(
        name="sweep",
        seed=seed,
        max_depth=2,
        fp_flavor=fp_flavor,
        trapping_prob=0.08,  # exercise the no-speculation path often
    )
    prog = generate_program(spec)
    train = random_args(spec, 1)
    ref = perturbed_args(spec, train, 2)
    run_experiment(
        prog.func,
        train,
        ref,
        variants=ALL,
        restructure=restructure,
        validate=True,
    )


@settings(max_examples=6, deadline=None)
@given(st.integers(min_value=0, max_value=50_000))
def test_equivalence_with_deeper_nesting(seed):
    spec = ProgramSpec(name="deep", seed=seed, max_depth=3, region_length=4)
    prog = generate_program(spec)
    args = random_args(spec, 1)
    run_experiment(prog.func, args, args, variants=ALL, validate=True)


def test_equivalence_on_the_paper_families():
    """One CINT-like and one CFP-like benchmark, full variant set."""
    from repro.bench.workloads import load_workload

    for name in ("mcf", "lbm"):
        workload = load_workload(name)
        run_experiment(
            workload.program.func,
            workload.train_args,
            workload.ref_args,
            variants=ALL,
        )
