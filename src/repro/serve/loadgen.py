"""Deterministic load generator and differential checker for the service.

A workload is a pool of ``unique`` distinct programs (drawn from the
fuzz-driver generator shapes, so they are the same population
``repro.check`` polices) served ``requests`` times in an interleaved
round-robin: request *j* asks for pool entry ``j % unique``.  Every pool
entry past the first visit is therefore a cache hit (or a coalesced wait
under concurrency), which makes the achievable hit rate an exact
function of the spec — ``(requests - unique) / requests`` — and lets the
CI gate assert against it.

Each request's expected observable behaviour is precomputed on the
reference interpreter over the *unoptimised* prepared function, so the
run doubles as a differential test: any served answer that deviates is a
**mismatch**, whether it came from a fresh compile, the cache, a
degraded fallback, or the adaptation tier mid-hot-swap.  The CI smoke
jobs require zero.

A spec with ``drift_at=K`` is *phase-shifting*: from request ``K`` on,
argument vectors come from an independent distribution, so the live
node-frequency mix diverges from the profile the artifacts were compiled
under — the end-to-end driver for drift-triggered recompilation
(``python -m repro.serve load --adapt --drift-at K``).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.bench.generator import generate_program, random_args
from repro.check.driver import SHAPES, case_inputs, spec_for_shape
from repro.ir.printer import format_function
from repro.pipeline import prepare
from repro.profiles.interp import run_function
from repro.serve.server import CompileRequest, CompileService, ServeResponse

DEFAULT_VARIANTS = ("mc-ssapre", "ssapre")

__all__ = [
    "DEFAULT_VARIANTS",
    "WorkloadSpec",
    "Workload",
    "LoadReport",
    "build_workload",
    "run_load",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Deterministic description of one load run."""

    requests: int = 100
    unique: int = 6
    shapes: tuple[str, ...] = SHAPES
    variants: tuple[str, ...] = DEFAULT_VARIANTS
    seed: int = 0
    rounds: int = 1
    #: Phase shift: requests ``j >= drift_at`` draw their argument
    #: vectors from an *independent* input distribution (fresh seeded
    #: draws instead of the train-correlated pool), flipping the node-
    #: frequency mix mid-run.  This is the workload that drives the
    #: adaptation tier's drift→recompile→hot-swap path end to end;
    #: ``None`` keeps the classic stationary workload.
    drift_at: int | None = None

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if not 1 <= self.unique <= self.requests:
            raise ValueError("unique must be in [1, requests]")
        for shape in self.shapes:
            if shape not in SHAPES:
                raise ValueError(f"unknown shape {shape!r}; expected one of {SHAPES}")
        if self.drift_at is not None and not 1 <= self.drift_at <= self.requests:
            raise ValueError("drift_at must be in [1, requests]")

    def expected_hit_rate(self) -> float:
        """The hit rate a correct cache must reach on this workload."""
        return (self.requests - self.unique) / self.requests


@dataclass
class Workload:
    """The materialised request sequence plus per-request expectations."""

    spec: WorkloadSpec
    requests: list[CompileRequest]
    #: ``expected[i]`` is request *i*'s reference observable
    #: ``(return_value, output_tuple)``.
    expected: list[tuple]


def build_workload(spec: WorkloadSpec) -> Workload:
    """Materialise the request sequence for *spec* (pure, deterministic)."""
    pool: list[tuple[CompileRequest, dict]] = []
    for i in range(spec.unique):
        shape = spec.shapes[i % len(spec.shapes)]
        gen_seed = spec.seed + i
        program_spec = spec_for_shape(shape, gen_seed)
        generated = generate_program(program_spec)
        inputs = case_inputs(program_spec)
        # The post-drift phase: tiny argument values collapse the masked
        # loop bounds the generator derives from them, so loop trip
        # counts (and with them the node-frequency distribution the
        # artifacts were trained under) genuinely move.
        drift_inputs = [
            random_args(program_spec, seed=9000 + spec.seed + 31 * i + k, low=0, high=3)
            for k in range(3)
        ]
        base = CompileRequest(
            source=format_function(generated.func),
            variant=spec.variants[i % len(spec.variants)],
            train_args=tuple(inputs[0]),
            rounds=spec.rounds,
        )
        prepared = prepare(generated.func)
        pool.append((base, {
            "prepared": prepared,
            "inputs": inputs[1:],
            "drift_inputs": drift_inputs,
        }))

    requests: list[CompileRequest] = []
    expected: list[tuple] = []
    oracle_cache: dict[tuple[int, tuple[int, ...]], tuple] = {}
    for j in range(spec.requests):
        i = j % spec.unique
        base, extra = pool[i]
        drifted = spec.drift_at is not None and j >= spec.drift_at
        ref_inputs = extra["drift_inputs"] if drifted else extra["inputs"]
        args = tuple(ref_inputs[(j // spec.unique) % len(ref_inputs)])
        requests.append(
            CompileRequest(
                source=base.source,
                args=args,
                variant=base.variant,
                train_args=base.train_args,
                rounds=base.rounds,
            )
        )
        cache_key = (i, args)
        if cache_key not in oracle_cache:
            result = run_function(extra["prepared"], list(args))
            oracle_cache[cache_key] = result.observable()
        expected.append(oracle_cache[cache_key])
    return Workload(spec=spec, requests=requests, expected=expected)


@dataclass
class LoadReport:
    """Outcome of one load run, JSON-exportable for the CI artifact."""

    requests: int
    ok: int = 0
    errors: int = 0
    timeouts: int = 0
    degraded: int = 0
    mismatches: int = 0
    served_by: dict[str, int] = field(default_factory=dict)
    hit_rate: float = 0.0
    expected_hit_rate: float = 0.0
    wall_s: float = 0.0
    rps: float = 0.0
    metrics: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "degraded": self.degraded,
            "mismatches": self.mismatches,
            "served_by": dict(sorted(self.served_by.items())),
            "hit_rate": round(self.hit_rate, 4),
            "expected_hit_rate": round(self.expected_hit_rate, 4),
            "wall_s": round(self.wall_s, 6),
            "rps": round(self.rps, 2),
            "metrics": self.metrics,
        }


def run_load(
    service: CompileService,
    workload: Workload,
    *,
    jobs: int = 1,
) -> tuple[LoadReport, list[ServeResponse]]:
    """Drive *workload* through *service* with ``jobs`` client threads.

    Responses come back in request order regardless of concurrency, so
    ``responses[i]`` always pairs with ``workload.expected[i]``.
    """
    start = time.perf_counter()
    if jobs <= 1:
        responses = [service.handle(request) for request in workload.requests]
    else:
        with ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="repro-loadgen"
        ) as pool:
            responses = list(pool.map(service.handle, workload.requests))
    wall = time.perf_counter() - start

    report = LoadReport(
        requests=len(responses),
        expected_hit_rate=workload.spec.expected_hit_rate(),
        wall_s=wall,
        rps=len(responses) / wall if wall > 0 else 0.0,
    )
    for response, expected in zip(responses, workload.expected):
        if response.status == "ok":
            report.ok += 1
            if response.observable() != expected:
                report.mismatches += 1
        elif response.status == "timeout":
            report.timeouts += 1
        else:
            report.errors += 1
        if response.degraded:
            report.degraded += 1
        if response.served_by is not None:
            report.served_by[response.served_by] = (
                report.served_by.get(response.served_by, 0) + 1
            )
    report.hit_rate = service.metrics.hit_rate()
    report.metrics = service.metrics.to_dict()
    return report, responses
