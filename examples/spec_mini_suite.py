#!/usr/bin/env python3
"""Mini SPEC-like suite: a four-benchmark slice of the paper's Table 1/2.

Runs the full FDO protocol (train-profile, A/B/C compiles, ref-input
measurement) on two CINT-like and two CFP-like synthetic benchmarks and
prints the paper-style table rows plus the EFG-size summary of Figure 11.

The full 29-benchmark versions are `python -m repro.bench table1`,
`table2`, `fig9`, `fig10`, `fig11`, `sec4`, `all`.

Run:  python examples/spec_mini_suite.py
"""

from repro.bench.figures import EFGSizeDistribution
from repro.bench.tables import Table, measure_workload
from repro.bench.workloads import load_workload

BENCHMARKS = ("mcf", "sjeng", "milc", "lbm")


def main() -> None:
    table = Table(title="Mini suite (2 CINT-like + 2 CFP-like benchmarks)")
    sizes = EFGSizeDistribution()
    for name in BENCHMARKS:
        workload = load_workload(name)
        row = measure_workload(workload)
        table.rows.append(row)
        sizes.sizes.extend(row.efg_sizes)
        print(f"measured {name} ({workload.family}) ...")

    print()
    print(table.render())
    print()
    print(
        f"EFGs formed: {sizes.total}, min {sizes.minimum} nodes, "
        f"max {sizes.maximum} nodes; "
        f"{sizes.share_at(4):.0%} have exactly 4 nodes, "
        f"{sizes.cumulative_at_most(10):.0%} have <= 10 nodes"
    )
    print("(compare paper Section 5.2: 50% at 4 nodes, 86.5% <= 10 nodes)")


if __name__ == "__main__":
    main()
