#!/usr/bin/env python3
"""Feedback-directed speculation: the paper's A/B/C experiment on one program.

Builds a branchy kernel whose hot path is input-dependent, trains on one
input, and measures a different (correlated) input under the paper's three
compiles:

  A. SSAPRE      safe PRE, no profile
  B. SSAPREsp    loop-based speculation, no profile
  C. MC-SSAPRE   min-cut optimal speculation with the training profile

Also shows the FDO trade-off: an *anti-correlated* input makes the
speculative placement pay for computations it does not need.

Run:  python examples/fdo_speculation.py
"""

from repro.ir.builder import FunctionBuilder
from repro.pipeline import run_experiment
from repro.profiles.counts import normalize_expr_counts


def build_kernel():
    """A kernel with a biased branch inside a loop.

    When ``bias`` is large the loop mostly takes the path that needs
    ``a*b``; speculating the product into the other path's iterations is
    profitable exactly when the profile says so.
    """
    b = FunctionBuilder("kernel", params=["a", "b", "n", "bias"])
    b.block("entry")
    b.copy("i", 0)
    b.copy("acc", 0)
    b.jump("head")
    b.block("head")
    b.assign("c", "lt", "i", "n")
    b.branch("c", "body", "done")
    b.block("body")
    b.assign("m", "mod", "i", 10)
    b.assign("hot", "lt", "m", "bias")
    b.branch("hot", "compute_early", "skip")
    b.block("compute_early")
    b.assign("x", "mul", "a", "b")       # first use, hot path only
    b.assign("acc", "add", "acc", "x")
    b.jump("mid")
    b.block("skip")
    b.assign("acc", "add", "acc", 1)     # no product here
    b.jump("mid")
    b.block("mid")
    b.branch("hot", "use_again", "latch")
    b.block("use_again")
    b.assign("y", "mul", "a", "b")       # partially redundant second use
    b.assign("acc", "add", "acc", "y")
    b.jump("latch")
    b.block("latch")
    b.assign("a", "xor", "a", "i")       # kill a*b every iteration
    b.assign("i", "add", "i", 1)
    b.jump("head")
    b.block("done")
    b.ret("acc")
    return b.build()


def report(title, experiment, variants):
    print(f"\n{title}")
    print(f"  {'variant':<12} {'dynamic cost':>12}   a*b evals")
    key = ("mul", ("var", "a"), ("var", "b"))
    for variant in variants:
        m = experiment.measurements[variant]
        counts = normalize_expr_counts(m.expr_counts)
        print(f"  {variant:<12} {m.dynamic_cost:>12}   {counts.get(key, 0)}")


def main() -> None:
    func = build_kernel()

    # Hot-product training input: 8 of every 10 iterations multiply.
    train = [7, 9, 200, 8]
    correlated_ref = [7, 9, 220, 8]
    anti_ref = [7, 9, 220, 1]  # the product is almost never needed

    experiment = run_experiment(
        func, train, correlated_ref,
        variants=("ssapre", "ssapre-sp", "mc-ssapre"),
    )
    report("Correlated reference input (profile matches reality):",
           experiment, ("none", "ssapre", "ssapre-sp", "mc-ssapre"))
    a = experiment.cost("ssapre")
    c = experiment.cost("mc-ssapre")
    print(f"  speedup of C over A: {(a - c) / a:.2%}")

    adversarial = run_experiment(
        func, train, anti_ref,
        variants=("ssapre", "mc-ssapre"),
    )
    report("Anti-correlated reference input (speculation mispredicted):",
           adversarial, ("none", "ssapre", "mc-ssapre"))
    a = adversarial.cost("ssapre")
    c = adversarial.cost("mc-ssapre")
    print(f"  'speedup' of C over A: {(a - c) / a:.2%}  "
          "(can be negative — the FDO bet lost)")


if __name__ == "__main__":
    main()
