"""Tests for the random program generator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import (
    ProgramSpec,
    generate_program,
    perturbed_args,
    random_args,
)
from repro.ir.verifier import verify_function
from repro.profiles.interp import run_function


class TestDeterminism:
    def test_same_seed_same_program(self):
        spec = ProgramSpec(name="d", seed=42)
        one = generate_program(spec).func
        two = generate_program(spec).func
        assert str(one) == str(two)

    def test_different_seeds_differ(self):
        one = generate_program(ProgramSpec(name="d", seed=1)).func
        two = generate_program(ProgramSpec(name="d", seed=2)).func
        assert str(one) != str(two)

    def test_args_deterministic(self):
        spec = ProgramSpec(name="d", seed=7)
        assert random_args(spec, 1) == random_args(spec, 1)
        assert random_args(spec, 1) != random_args(spec, 2)

    def test_perturbed_args_close_to_base(self):
        spec = ProgramSpec(name="d", seed=7)
        base = random_args(spec, 1)
        ref = perturbed_args(spec, base, 2, strength=5)
        assert len(ref) == len(base)
        assert all(abs(r - b) <= 5 for r, b in zip(ref, base))
        assert all(r >= 0 for r in ref)


class TestWellFormedness:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=200_000), st.booleans())
    def test_generated_programs_verify_and_terminate(self, seed, fp):
        spec = ProgramSpec(name="w", seed=seed, max_depth=3, fp_flavor=fp)
        prog = generate_program(spec)
        verify_function(prog.func)
        for argseed in (1, 2):
            run = run_function(
                prog.func, random_args(spec, argseed), max_steps=3_000_000
            )
            assert run.steps > 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=50_000))
    def test_loop_counters_never_written_by_body(self, seed):
        """Termination guarantee: li*/lb* only written by the loop scaffold."""
        from repro.ir.instructions import Assign, BinOp

        spec = ProgramSpec(name="w", seed=seed, max_depth=3)
        prog = generate_program(spec)
        for block in prog.func:
            for stmt in block.body:
                if isinstance(stmt, Assign) and stmt.target.name.startswith("li"):
                    # only the increment and the init write the counter
                    if isinstance(stmt.rhs, BinOp):
                        assert stmt.rhs.op == "add"
                        assert stmt.rhs.right.value == 1

    def test_hot_expressions_recur(self):
        spec = ProgramSpec(name="hot", seed=3, hot_prob=0.9, max_depth=2)
        prog = generate_program(spec)
        from repro.analysis.dataflow import expression_keys

        keys = expression_keys(prog.func)
        assert prog.hot_expressions
        # At least one hot expression appears as a class.
        hot_keys = {
            (op, ("var", x), ("var", y)) for op, x, y in prog.hot_expressions
        }
        assert hot_keys & set(keys)


class TestTrappingKnobs:
    def test_explicit_density_is_exact_on_average(self):
        """With trapping_density set, the trapping share of computation
        statements converges on the knob value."""
        from repro.ir.instructions import Assign, BinOp
        from repro.ir.ops import is_trapping

        trapping = total = 0
        for seed in range(20):
            spec = ProgramSpec(
                name="td", seed=seed, max_depth=2, region_length=8,
                trapping_density=0.30, hot_prob=0.0, output_prob=0.0,
            )
            for block in generate_program(spec).func:
                for stmt in block.body:
                    if isinstance(stmt, Assign) and isinstance(stmt.rhs, BinOp):
                        # Skip the scaffold (loop bounds, epilogue).
                        if stmt.target.name.startswith(("li", "lb", "lc", "ret_", "c")):
                            continue
                        total += 1
                        trapping += is_trapping(stmt.rhs.op)
        assert total > 200
        assert abs(trapping / total - 0.30) < 0.08

    def test_trapping_hot_expressions(self):
        """trapping_hot_prob manufactures redundant trapping computations."""
        from repro.ir.ops import is_trapping

        spec = ProgramSpec(
            name="th", seed=11, max_depth=2, hot_exprs=8, trapping_hot_prob=1.0
        )
        prog = generate_program(spec)
        assert prog.hot_expressions
        assert all(is_trapping(op) for op, _, _ in prog.hot_expressions)
        verify_function(prog.func)
        run_function(prog.func, random_args(spec, 1), max_steps=3_000_000)

    def test_knobs_off_consume_no_randomness(self):
        """Default knob values must reproduce the historical stream: turning
        a knob on changes the program, turning it back off restores it."""
        base = generate_program(ProgramSpec(name="k", seed=9)).func
        off = generate_program(
            ProgramSpec(name="k", seed=9, trapping_hot_prob=0.0)
        ).func
        on = generate_program(
            ProgramSpec(name="k", seed=9, trapping_hot_prob=1.0)
        ).func
        assert str(base) == str(off)
        assert str(base) != str(on)

    def test_effective_density_formula(self):
        legacy = ProgramSpec(name="e", hot_prob=0.5, trapping_prob=0.1)
        assert legacy.effective_trapping_density() == 0.05
        explicit = ProgramSpec(name="e", trapping_density=0.25)
        assert explicit.effective_trapping_density() == 0.25

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=20_000))
    def test_trapping_heavy_programs_verify_and_terminate(self, seed):
        """Trapping ops are total (div/mod by zero yield 0), so even a
        trapping-saturated program verifies and terminates."""
        spec = ProgramSpec(
            name="tt", seed=seed, max_depth=3,
            trapping_density=0.5, trapping_hot_prob=0.5,
        )
        prog = generate_program(spec)
        verify_function(prog.func)
        run = run_function(prog.func, random_args(spec, 1), max_steps=3_000_000)
        assert run.steps > 0


class TestCompositeKnobs:
    def test_knobs_off_consume_no_randomness(self):
        base = generate_program(ProgramSpec(name="c", seed=9)).func
        off = generate_program(
            ProgramSpec(name="c", seed=9, composite_exprs=0, composite_prob=0.0)
        ).func
        on = generate_program(
            ProgramSpec(
                name="c", seed=9, composite_exprs=2, composite_prob=0.9
            )
        ).func
        assert str(base) == str(off)
        assert str(base) != str(on)

    def test_chains_recorded_and_depth_respected(self):
        spec = ProgramSpec(
            name="c", seed=3, composite_exprs=3, composite_depth=3,
            composite_prob=0.5,
        )
        prog = generate_program(spec)
        assert len(prog.composite_chains) == 3
        for chain in prog.composite_chains:
            assert len(chain) == 1 + spec.composite_depth

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=20_000))
    def test_composite_heavy_programs_verify_and_terminate(self, seed):
        spec = ProgramSpec(
            name="cc", seed=seed, max_depth=3,
            composite_exprs=4, composite_depth=4, composite_prob=0.6,
            trapping_density=0.1, trapping_hot_prob=0.3,
        )
        prog = generate_program(spec)
        verify_function(prog.func)
        run = run_function(prog.func, random_args(spec, 1), max_steps=3_000_000)
        assert run.steps > 0


class TestMemoryKnobs:
    def _mem_spec(self, seed, **overrides):
        knobs = dict(
            name="m", seed=seed, max_depth=2, region_length=6,
            arrays=2, mem_prob=0.5, store_density=0.4, hot_loads=3,
        )
        knobs.update(overrides)
        return ProgramSpec(**knobs)

    def test_knobs_off_consume_no_randomness(self):
        """arrays=0 must reproduce the historical stream regardless of the
        other memory knobs' values."""
        base = generate_program(ProgramSpec(name="m", seed=9)).func
        off = generate_program(
            ProgramSpec(
                name="m", seed=9, arrays=0, mem_prob=0.9,
                store_density=0.9, alias_density=0.9, hot_loads=7,
            )
        ).func
        on = generate_program(self._mem_spec(9)).func
        assert str(base) == str(off)
        assert str(base) != str(on)

    def test_memory_programs_contain_loads_and_stores(self):
        from repro.ir.instructions import Assign, Load, Store

        loads = stores = 0
        for seed in range(10):
            func = generate_program(self._mem_spec(seed)).func
            assert func.arrays  # arrays declared on the function
            for block in func:
                for stmt in block.body:
                    if isinstance(stmt, Assign) and isinstance(stmt.rhs, Load):
                        loads += 1
                    elif isinstance(stmt, Store):
                        stores += 1
        assert loads > 10 and stores > 3

    def test_hot_load_sites_recorded_and_shared(self):
        """Hot load sites are the redundancy seeds: the same (array,
        index) pair must be loaded from more than one program point."""
        from repro.ir.instructions import Assign, Load

        for seed in range(6):
            prog = generate_program(self._mem_spec(seed, mem_prob=0.7))
            assert prog.hot_load_sites
            sites = [
                (stmt.rhs.array, stmt.rhs.index)
                for block in prog.func for stmt in block.body
                if isinstance(stmt, Assign) and isinstance(stmt.rhs, Load)
            ]
            if any(sites.count(s) > 1 for s in set(sites)):
                return
        raise AssertionError("no repeated load site in six seeds")

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_memory_programs_verify_terminate_and_never_trap(self, seed):
        """Indices are constants in bounds or masked to a power-of-two
        length, so generated memory programs run trap-free by
        construction on every input."""
        spec = self._mem_spec(
            seed, trapping_density=0.05, trapping_hot_prob=0.3,
            alias_density=0.7,
        )
        prog = generate_program(spec)
        verify_function(prog.func)
        for argseed in (1, 2):
            run = run_function(
                prog.func, random_args(spec, argseed), max_steps=3_000_000
            )
            assert run.steps > 0

    def test_trapping_hot_prob_yields_lexically_may_trapping_loads(self):
        """With trapping_hot_prob on, hot load sites use the masked
        index variable — lexically may-trapping classes that exercise
        the safe-fallback path even though they never fault at runtime."""
        prog = generate_program(self._mem_spec(5, trapping_hot_prob=1.0))
        assert prog.hot_load_sites
        # A site index is an int constant (speculatable) or the masked
        # index variable's name (may-trap); here all must be the latter.
        assert all(
            isinstance(index, str) for _, index in prog.hot_load_sites
        )
        off = generate_program(self._mem_spec(5, trapping_hot_prob=0.0))
        assert all(
            isinstance(index, int) for _, index in off.hot_load_sites
        )


class TestProfiles:
    def test_different_inputs_different_profiles(self):
        # Probe a few seeds: at least one pair of inputs must steer the
        # program differently (data-dependent control flow).
        for seed in range(11, 17):
            spec = ProgramSpec(name="p", seed=seed, max_depth=2)
            prog = generate_program(spec)
            one = run_function(prog.func, random_args(spec, 1)).profile
            two = run_function(prog.func, random_args(spec, 9)).profile
            if one.node_freq != two.node_freq:
                return
        raise AssertionError("no input-dependent control flow found")

    def test_profile_flow_conservation(self):
        spec = ProgramSpec(name="p", seed=11, max_depth=2)
        prog = generate_program(spec)
        run = run_function(prog.func, random_args(spec, 1))
        assert run.profile.check_flow_conservation(prog.func.entry) == []
