"""Load generator: deterministic workloads, differential gates."""

import pytest

from repro.serve.loadgen import (
    WorkloadSpec,
    build_workload,
    latency_summary,
    open_loop_schedule,
    run_load,
)
from repro.serve.server import CompileService


class TestWorkloadSpec:
    def test_expected_hit_rate(self):
        spec = WorkloadSpec(requests=100, unique=6)
        assert spec.expected_hit_rate() == pytest.approx(0.94)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(requests=0)
        with pytest.raises(ValueError):
            WorkloadSpec(requests=5, unique=6)
        with pytest.raises(ValueError):
            WorkloadSpec(shapes=("nope",))


class TestBuildWorkload:
    def test_deterministic(self):
        spec = WorkloadSpec(requests=12, unique=4)
        a = build_workload(spec)
        b = build_workload(spec)
        assert [r.source for r in a.requests] == [
            r.source for r in b.requests
        ]
        assert [r.args for r in a.requests] == [r.args for r in b.requests]
        assert a.expected == b.expected

    def test_round_robin_over_the_pool(self):
        workload = build_workload(WorkloadSpec(requests=9, unique=3))
        sources = [r.source for r in workload.requests]
        assert sources[0:3] == sources[3:6] == sources[6:9]
        assert len(set(sources[0:3])) == 3

    def test_profile_guided_requests_carry_train_args(self):
        workload = build_workload(
            WorkloadSpec(requests=4, unique=2, variants=("mc-ssapre",))
        )
        assert all(r.train_args is not None for r in workload.requests)


class TestRunLoad:
    def test_serial_run_hits_the_admitted_rate_with_zero_mismatches(self):
        workload = build_workload(WorkloadSpec(requests=12, unique=4))
        with CompileService() as service:
            report, responses = run_load(service, workload, jobs=1)
        assert report.ok == 12
        assert report.errors == report.timeouts == 0
        assert report.mismatches == 0
        assert report.hit_rate == pytest.approx(report.expected_hit_rate)
        assert report.served_by["compile"] == 4
        assert report.served_by["memory"] == 8
        assert len(responses) == 12

    def test_concurrent_run_compiles_each_key_once(self):
        workload = build_workload(WorkloadSpec(requests=16, unique=4))
        with CompileService() as service:
            report, _ = run_load(service, workload, jobs=4)
        assert report.mismatches == 0
        assert report.errors == 0
        assert service.metrics.get("compiles") == 4
        # misses + coalesced + hits account for every request.
        assert report.hit_rate >= report.expected_hit_rate

    def test_report_is_json_safe(self):
        import json

        workload = build_workload(WorkloadSpec(requests=4, unique=2))
        with CompileService() as service:
            report, _ = run_load(service, workload)
        data = json.loads(json.dumps(report.to_dict()))
        assert data["requests"] == 4
        assert data["metrics"]["schema"] >= 1


class TestLatencyReporting:
    """Satellite of the cluster PR: the closed-loop report separates
    per-request latency (send -> recv) from the old busy-time ``rps``
    (which under-charged queueing when jobs > 1)."""

    def test_report_carries_latency_and_service_rps(self):
        workload = build_workload(WorkloadSpec(requests=8, unique=2))
        with CompileService() as service:
            report, _ = run_load(service, workload, jobs=2)
        data = report.to_dict()
        assert set(data["latency"]) == {
            "p50_s", "p95_s", "p99_s", "mean_s", "max_s"
        }
        assert 0 < data["latency"]["p50_s"] <= data["latency"]["max_s"]
        assert data["latency"]["p50_s"] <= data["latency"]["p99_s"]
        assert data["service_rps"] > 0
        assert data["rps"] > 0  # the legacy field survives

    def test_latency_summary_pins(self):
        summary = latency_summary([0.1, 0.2, 0.3, 0.4])
        assert summary["p50_s"] == pytest.approx(0.25)
        assert summary["p95_s"] == pytest.approx(0.385)
        assert summary["p99_s"] == pytest.approx(0.397)
        assert summary["mean_s"] == pytest.approx(0.25)
        assert summary["max_s"] == pytest.approx(0.4)

    def test_latency_summary_of_nothing(self):
        summary = latency_summary([])
        assert summary == {
            "p50_s": 0.0, "p95_s": 0.0, "p99_s": 0.0,
            "mean_s": 0.0, "max_s": 0.0,
        }


class TestOpenLoopSchedule:
    def test_deterministic_for_a_seed(self):
        assert open_loop_schedule(50, 200.0, seed=7) == open_loop_schedule(
            50, 200.0, seed=7
        )
        assert open_loop_schedule(50, 200.0, seed=7) != open_loop_schedule(
            50, 200.0, seed=8
        )

    def test_starts_at_zero_and_is_monotonic(self):
        schedule = open_loop_schedule(100, 500.0, seed=1)
        assert schedule[0] == 0.0
        assert schedule == sorted(schedule)
        assert len(schedule) == 100

    def test_mean_gap_matches_the_offered_rate(self):
        rps = 400.0
        schedule = open_loop_schedule(4000, rps, seed=3)
        mean_gap = schedule[-1] / (len(schedule) - 1)
        # Poisson arrivals: the sample mean of ~4k exponential gaps sits
        # within a few percent of 1/rps.
        assert mean_gap == pytest.approx(1.0 / rps, rel=0.1)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            open_loop_schedule(10, 0.0)
