"""An adaptive ("JIT-style") compilation manager.

The paper's conclusion argues MC-SSAPRE belongs in just-in-time compilers:
its profile demand is just per-block execution counters (cheap to
instrument), and its min-cut problems are tiny, so recompilation is fast.
:class:`AdaptiveCompiler` plays that deployment story out end-to-end with
the pieces in this repository:

* functions start "cold" and run under the profiling interpreter, with
  node counters accumulating across calls;
* once a function's accumulated block executions pass ``hot_threshold``,
  it is recompiled with MC-SSAPRE using exactly those counters;
* subsequent calls run the optimised code; if the observed behaviour ever
  drifts (counters keep accumulating), the manager can retier.

This is an orchestration layer only — no new algorithms — but it turns
"opens the way for deployment in just-in-time compilers" from a claim in
the conclusion into an API with tests
(``tests/integration/test_jit.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Function
from repro.passes.compiler import compile as compile_func
from repro.passes.manager import PassReport
from repro.pipeline import prepare
from repro.profiles.interp import RunResult, run_function
from repro.profiles.profile import ExecutionProfile


@dataclass
class FunctionState:
    """Runtime state of one managed function."""

    source: Function
    prepared: Function
    counters: ExecutionProfile = field(default_factory=ExecutionProfile)
    calls: int = 0
    executed_blocks: int = 0
    compiled: Function | None = None
    compilations: int = 0
    last_report: PassReport | None = None

    @property
    def tier(self) -> str:
        return "optimised" if self.compiled is not None else "interpreted"


class AdaptiveCompiler:
    """Profile-in-the-loop execution manager for IR functions.

    >>> jit = AdaptiveCompiler(hot_threshold=500)
    >>> jit.register(func)
    >>> jit.call("kernel", [1, 2, 3])   # interpreted, profiled
    """

    def __init__(self, hot_threshold: int = 1000, recompile_growth: float = 8.0):
        if hot_threshold <= 0:
            raise ValueError("hot_threshold must be positive")
        self.hot_threshold = hot_threshold
        #: recompile again when counters grow by this factor since the
        #: last compile (simple retiering policy).
        self.recompile_growth = recompile_growth
        self._functions: dict[str, FunctionState] = {}
        self._compiled_at: dict[str, int] = {}

    # ------------------------------------------------------------------
    def register(self, func: Function) -> None:
        """Add a function to the manager (normalised once, up front)."""
        if func.name in self._functions:
            raise ValueError(f"function {func.name!r} already registered")
        self._functions[func.name] = FunctionState(
            source=func, prepared=prepare(func)
        )

    def state(self, name: str) -> FunctionState:
        return self._functions[name]

    # ------------------------------------------------------------------
    def call(self, name: str, args: list[int], max_steps: int = 5_000_000) -> RunResult:
        """Execute one call, profiling and (re)tiering as needed."""
        state = self._functions[name]
        state.calls += 1

        if state.compiled is None:
            result = run_function(state.prepared, args, max_steps=max_steps)
            self._accumulate(state, result)
            if state.executed_blocks >= self.hot_threshold:
                self._compile(state)
            return result

        result = run_function(state.compiled, args, max_steps=max_steps)
        # Optimised code still advances the call counter; labels of the
        # compiled function may differ (PRE kept the CFG shape, so node
        # counters remain meaningful for retiering).
        self._accumulate(state, result)
        compiled_at = self._compiled_at[name]
        if state.executed_blocks >= compiled_at * self.recompile_growth:
            self._compile(state)
        return result

    # ------------------------------------------------------------------
    def _accumulate(self, state: FunctionState, result: RunResult) -> None:
        for label, count in result.profile.node_freq.items():
            state.counters.node_freq[label] = (
                state.counters.node_freq.get(label, 0) + count
            )
            state.executed_blocks += count

    def _compile(self, state: FunctionState) -> None:
        # Node counters only — the whole point (paper contribution 3);
        # the mc-ssapre stage itself narrows the profile to nodes.
        compiled = compile_func(
            state.prepared, "mc-ssapre", state.counters
        )
        state.compiled = compiled.func
        state.compilations += 1
        state.last_report = compiled.report
        self._compiled_at[state.source.name] = max(state.executed_blocks, 1)
