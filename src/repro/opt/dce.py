"""Dead code elimination on SSA.

A definition is *live* iff its value can reach an observable effect: an
``output``, a return value, or a branch condition (control decides which
effects happen).  Everything else — assignments and phis whose targets are
never transitively used by an effect — is deleted.

Scalar IR operators are effect-free by construction (division by zero is
defined), so removing a dead scalar computation can never change
observable behaviour; the property tests check exactly that.  Memory
operations are different: a :class:`Store` is a side effect (roots the
liveness closure), and a :class:`Load` can trap on an out-of-bounds
index, so dead loads are conservatively kept — deleting one could erase
a fault the original program exhibits.
"""

from __future__ import annotations

from collections import deque

from repro.ir.function import Function
from repro.ir.instructions import Assign, CondJump, Load, Output, Return, Store
from repro.ir.values import Var
from repro.ssa.ssa_verifier import is_ssa


def eliminate_dead_code(func: Function) -> int:
    """Remove dead assignments and phis in place; returns removal count.

    Requires SSA input (uses are version-exact there, making liveness a
    pure def-use closure with no aliasing questions).
    """
    if not is_ssa(func):
        raise ValueError("DCE requires SSA input")

    # Map each versioned variable to the operands its definition reads.
    reads_of: dict[Var, list[Var]] = {}
    for block in func:
        for phi in block.phis:
            reads_of[phi.target] = [
                arg for arg in phi.args.values() if isinstance(arg, Var)
            ]
        for stmt in block.body:
            if isinstance(stmt, Assign):
                reads_of[stmt.target] = [
                    op for op in stmt.used_operands() if isinstance(op, Var)
                ]

    # Seed with the roots of observability.
    live: set[Var] = set()
    worklist: deque[Var] = deque()

    def mark(var: Var) -> None:
        if var not in live:
            live.add(var)
            worklist.append(var)

    for block in func:
        for stmt in block.body:
            if isinstance(stmt, Output) and isinstance(stmt.value, Var):
                mark(stmt.value)
            elif isinstance(stmt, Store):
                # Stores are observable side effects; their operands are
                # roots.
                for operand in stmt.used_operands():
                    if isinstance(operand, Var):
                        mark(operand)
            elif isinstance(stmt, Assign) and isinstance(stmt.rhs, Load):
                # Loads may trap (OOB index); the statement is kept, so
                # its index operand must stay defined.
                if isinstance(stmt.rhs.index, Var):
                    mark(stmt.rhs.index)
        term = block.terminator
        if isinstance(term, CondJump) and isinstance(term.cond, Var):
            mark(term.cond)
        elif isinstance(term, Return) and isinstance(term.value, Var):
            mark(term.value)

    while worklist:
        var = worklist.popleft()
        for read in reads_of.get(var, ()):
            mark(read)

    removed = 0
    for block in func:
        kept_phis = []
        for phi in block.phis:
            if phi.target in live:
                kept_phis.append(phi)
            else:
                removed += 1
        block.phis = kept_phis
        kept_body = []
        for stmt in block.body:
            if (
                isinstance(stmt, Assign)
                and stmt.target not in live
                and not isinstance(stmt.rhs, Load)
            ):
                removed += 1
            else:
                kept_body.append(stmt)
        block.body = kept_body
    if removed:
        func.mark_code_mutated()
    return removed
