"""MC-PRE — Xue & Cai's CFG-based optimal speculative PRE (baseline).

Reconstructed from the paper's Sections 2 and 4 and the standard MC-PRE
literature: classical bit-vector data-flow analyses (availability and
partial anticipability) remove the non-essential parts of the CFG; the
remaining *reduced flow graph* gets a single source and sink and a minimum
cut chooses the insertion edges.  Differences from MC-SSAPRE that the
benchmarks measure (paper Section 4):

* works on the **non-SSA** program, one flow network per expression but
  built from the CFG, so networks are much larger than EFGs;
* needs **edge frequencies**, not just node frequencies;
* edges out of the artificial source are *not* insertion points and carry
  infinite weight (MC-SSAPRE's source edges are insertable);
* eliminates only redundancies visible to the lexical bit-vector
  analyses; a local CSE effect still falls out because sink edges are
  priced at block frequency.

Network construction (per expression ``e``):

* every interesting block ``v`` is split into ``v_in``/``v_out`` — the
  paper notes MC-PRE must split blocks "to allow the top part to function
  as a source and the bottom part to function as a sink";
* essential CFG edge ``(u,v)`` (``¬AVAILout(u) ∧ PANT_in(v)``):
  ``u_out → v_in`` with capacity ``edge_freq(u,v)`` — cuttable, meaning
  *insert e on this edge*;
* transparent block (no kill, no upward-exposed occurrence):
  ``v_in → v_out`` with infinite capacity;
* upward-exposed occurrence with ``¬AVAILin``: sink edge ``v_in → t``
  with capacity ``node_freq(v)`` — cuttable, meaning *compute in place*;
* fresh unavailability (entry block, or a kill not followed by a
  recomputation): infinite source edge ``s → v_out``.

Because both algorithms are computationally optimal, MC-PRE's resulting
dynamic evaluation counts must equal MC-SSAPRE's under the same profile —
the cross-check at the heart of ``tests/baselines/test_mcpre.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis import cfg_of
from repro.analysis.dataflow import (
    ExprKey,
    expression_keys,
    solve_pre_dataflow,
)
from repro.flownet.mincut import min_cut
from repro.flownet.network import INFINITE, FlowNetwork
from repro.ir.function import Function

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.passes.cache import AnalysisCache
from repro.ir.instructions import Assign, BinOp, Load, Store, UnaryOp, is_expr_rhs
from repro.ir.memory import key_may_trap, store_kills_key
from repro.ir.values import Var
from repro.profiles.profile import ExecutionProfile

SOURCE = "__source__"
SINK = "__sink__"


@dataclass
class MCPREStats:
    """Per-expression flow-network statistics (Section 4 comparison)."""

    key: ExprKey
    nodes: int
    edges: int
    cut_value: int
    insert_edges: int


@dataclass
class MCPREResult:
    """Outcome of an MC-PRE run."""

    stats: list[MCPREStats] = field(default_factory=list)
    insertions: int = 0
    reloads: int = 0
    skipped_trapping: int = 0

    def network_sizes(self) -> list[int]:
        return [s.nodes for s in self.stats]


def run_mc_pre(
    func: Function,
    profile: ExecutionProfile,
    validate: bool = False,
    cache: "AnalysisCache | None" = None,
) -> MCPREResult:
    """Run MC-PRE over every candidate expression of a non-SSA function.

    Insertions and rewrites touch block bodies only, so the CFG fetched
    from *cache* stays valid for every expression of the run.
    """
    from repro.passes.cache import AnalysisCache
    from repro.ssa.ssa_verifier import is_ssa

    if is_ssa(func):
        raise ValueError("MC-PRE operates on non-SSA input")
    cache = AnalysisCache.ensure(func, cache)
    result = MCPREResult()
    for key in expression_keys(func):
        if key_may_trap(key, func.arrays):
            result.skipped_trapping += 1
        _optimize_expression(func, key, profile, result, cache)
        if validate:
            from repro.ir.verifier import verify_function

            verify_function(func)
    func.mark_code_mutated()
    return result


def _optimize_expression(
    func: Function,
    key: ExprKey,
    profile: ExecutionProfile,
    result: MCPREResult,
    cache: "AnalysisCache | None" = None,
) -> None:
    dataflow = solve_pre_dataflow(func, [key])
    cfg = cfg_of(func, cache)
    reachable = set(cfg.reverse_postorder())

    local = dataflow.local
    antloc = {b for b in reachable if key in local[b].antloc}
    kill = {b for b in reachable if key in local[b].body_kill}
    comp = {b for b in reachable if key in local[b].comp}
    avail_in = {b for b in reachable if key in dataflow.avail_in[b]}
    avail_out = {b for b in reachable if key in dataflow.avail_out[b]}
    pant_in = {
        b
        for b in reachable
        if key in dataflow.pant_postphi[b]  # no phis on non-SSA input
    }

    sinks = {b for b in antloc if b not in avail_in}
    if not sinks:
        # Either no occurrence or everything is already fully available;
        # fully redundant occurrences are still deleted below.
        apply_insertions_and_rewrite(func, key, [], result, cache)
        return

    # Trapping expressions may not be speculated: insertions are only
    # permitted where the expression is fully anticipated (down-safe), so
    # the min cut degenerates to the optimal *safe* placement, mirroring
    # MC-SSAPRE's fallback to safe SSAPRE for such classes.  Loads with a
    # provably in-bounds constant index cannot fault and are speculated
    # freely — the same refinement MC-SSAPRE applies, keeping the two
    # optimal algorithms count-identical.
    trapping = key_may_trap(key, func.arrays)
    ant_in = {b for b in reachable if key in dataflow.ant_postphi[b]}

    network = FlowNetwork(SOURCE, SINK)
    assert func.entry is not None
    for u in reachable:
        for v in cfg.successors(u):
            if v in reachable and u not in avail_out and v in pant_in:
                insertable = not trapping or v in ant_in
                network.add_edge(
                    ("out", u),
                    ("in", v),
                    profile.edge(u, v) if insertable else INFINITE,
                    payload=("edge", u, v) if insertable else None,
                )
    for v in reachable:
        if v not in kill and v not in antloc:
            network.add_edge(("in", v), ("out", v), INFINITE)
        if v in sinks:
            network.add_edge(("in", v), SINK, profile.node(v), payload=("occ", v))
        # Fresh unavailability originates at v's exit: the entry block, or
        # a kill of an operand not followed by a recomputation.
        if v not in avail_out and (v in kill or v == func.entry):
            network.add_edge(SOURCE, ("out", v), INFINITE)

    # Prune nodes not on any source->sink path (the "removal of
    # non-essential edges" that keeps MC-PRE's networks manageable).
    pruned = _prune(network)

    cut = min_cut(pruned, sink_closest=True)
    insert_edges = [
        (e.payload[1], e.payload[2])
        for e in cut.cut_edges
        if e.payload is not None and e.payload[0] == "edge"
    ]
    result.stats.append(
        MCPREStats(
            key=key,
            nodes=pruned.node_count(),
            edges=pruned.edge_count(),
            cut_value=cut.value,
            insert_edges=len(insert_edges),
        )
    )
    apply_insertions_and_rewrite(func, key, insert_edges, result, cache)


def _prune(network: FlowNetwork) -> FlowNetwork:
    """Keep only nodes both reachable from s and co-reachable to t."""
    forward: set = {network.source}
    stack = [network.source]
    while stack:
        node = stack.pop()
        for edge in network.out_of(node):
            if edge.dst not in forward:
                forward.add(edge.dst)
                stack.append(edge.dst)
    backward: set = {network.sink}
    stack = [network.sink]
    while stack:
        node = stack.pop()
        for edge in network.into(node):
            if edge.src not in backward:
                backward.add(edge.src)
                stack.append(edge.src)
    keep = forward & backward
    pruned = FlowNetwork(network.source, network.sink)
    for edge in network.edges:
        if edge.src in keep and edge.dst in keep:
            pruned.add_edge(
                edge.src,
                edge.dst,
                INFINITE if edge.infinite else edge.capacity,
                payload=edge.payload,
            )
    pruned.add_node(network.source)
    pruned.add_node(network.sink)
    return pruned


def _temp_for(func: Function, key: ExprKey) -> Var:
    return func.fresh_temp("%mcpre")


def apply_insertions_and_rewrite(
    func: Function,
    key: ExprKey,
    insert_edges: list[tuple[str, str]],
    result,
    cache: "AnalysisCache | None" = None,
) -> None:
    """Apply insertions, then delete covered occurrences.

    Availability *after* insertions is recomputed with the insertion
    points acting as extra computations; every occurrence that is then
    fully available reloads from the temporary, and every surviving
    computation (plus every insertion) defines the temporary.  On non-SSA
    form no merge bookkeeping is needed: all defs write the same ``t``.
    """
    cfg = cfg_of(func, cache)
    temp = _temp_for(func, key)
    expr_proto = _find_rhs(func, key)
    if expr_proto is None:
        return

    inserted_at_exit: set[str] = set()
    for u, v in insert_edges:
        # Critical edges are split, so one endpoint owns the edge alone.
        if len(set(cfg.successors(u))) == 1:
            inserted_at_exit.add(u)
        elif len(cfg.predecessors(v)) == 1:
            _insert_at_entry(func, v, temp, expr_proto)
        else:  # pragma: no cover - guarded by critical-edge splitting
            raise AssertionError(f"cannot place insertion on critical edge {u}->{v}")
    for u in inserted_at_exit:
        func.blocks[u].body.append(Assign(temp, _clone_rhs(expr_proto)))

    # Recompute availability treating temp defs as computations of e.
    dataflow2 = solve_pre_dataflow(func, [key])
    avail = dataflow2.avail_in
    local = dataflow2.local

    reloads = 0
    saves = 0
    for label, block in func.blocks.items():
        if label not in avail:
            continue
        available = key in avail[label]
        new_body = []
        for stmt in block.body:
            is_occ = (
                isinstance(stmt, Assign)
                and is_expr_rhs(stmt.rhs)
                and stmt.rhs.class_key() == key
            )
            is_insert = (
                isinstance(stmt, Assign)
                and stmt.target == temp
                and is_expr_rhs(stmt.rhs)
                and stmt.rhs.class_key() == key
            )
            if is_insert:
                available = True
                new_body.append(stmt)
                continue
            if is_occ:
                if available:
                    new_body.append(Assign(stmt.target, temp))
                    reloads += 1
                else:
                    new_body.append(Assign(temp, stmt.rhs))
                    new_body.append(Assign(stmt.target, temp))
                    saves += 1
                    available = True
            else:
                new_body.append(stmt)
            if isinstance(stmt, Assign) and _kills(stmt.target, key):
                available = False
            elif isinstance(stmt, Store) and store_kills_key(
                stmt.array, stmt.index, key
            ):
                # A may-aliasing store invalidates the saved load value.
                available = False
        block.body = new_body
    result.insertions += len(insert_edges)
    result.reloads += reloads


def _insert_at_entry(func: Function, label: str, temp: Var, proto) -> None:
    func.blocks[label].body.insert(0, Assign(temp, _clone_rhs(proto)))


def _find_rhs(func: Function, key: ExprKey):
    for block in func:
        for stmt in block.body:
            if (
                isinstance(stmt, Assign)
                and is_expr_rhs(stmt.rhs)
                and stmt.rhs.class_key() == key
            ):
                return stmt.rhs
    return None


def _clone_rhs(rhs):
    if isinstance(rhs, BinOp):
        return BinOp(rhs.op, rhs.left, rhs.right)
    if isinstance(rhs, Load):
        return Load(rhs.array, rhs.index)
    return UnaryOp(rhs.op, rhs.operand)


def _kills(target: Var, key: ExprKey) -> bool:
    return any(k == "var" and p == target.name for k, p in key[1:])
