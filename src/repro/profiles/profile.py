"""Execution-profile containers.

MC-SSAPRE needs only **node** (basic-block) frequencies; MC-PRE needs
**edge** frequencies (paper Sections 1 and 4).  :class:`ExecutionProfile`
stores both so the two algorithms can be driven from one profiling run,
and so tests can check that MC-SSAPRE really never touches the edge map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ir.function import Function


@dataclass
class ExecutionProfile:
    """Node and edge frequencies gathered from (or synthesised for) a run."""

    node_freq: dict[str, int] = field(default_factory=dict)
    edge_freq: dict[tuple[str, str], int] = field(default_factory=dict)

    def node(self, label: str) -> int:
        return self.node_freq.get(label, 0)

    def edge(self, src: str, dst: str) -> int:
        return self.edge_freq.get((src, dst), 0)

    def nodes_only(self) -> "ExecutionProfile":
        """A copy with the edge map dropped.

        The MC-SSAPRE driver is handed this restricted view in tests to
        prove the algorithm needs no edge frequencies.
        """
        return ExecutionProfile(node_freq=dict(self.node_freq), edge_freq={})

    @classmethod
    def unit(cls, labels: "Iterable[str] | Function") -> "ExecutionProfile":
        """A profile in which every block has frequency 1.

        Feeding this to MC-SSAPRE turns its objective from dynamic
        evaluations into *static occurrences*: every insertion and every
        in-place computation costs exactly one instruction, so the min
        cut minimises code size instead of speed — the use of the
        framework the paper's Section 6 points at (after Scholz et al.).
        """
        from repro.ir.function import Function

        if isinstance(labels, Function):
            labels = labels.blocks.keys()
        return cls(node_freq={label: 1 for label in labels})

    def scaled(self, factor: float) -> "ExecutionProfile":
        """A copy with every count scaled (and floored at >= 0 ints)."""
        return ExecutionProfile(
            node_freq={k: max(0, int(v * factor)) for k, v in self.node_freq.items()},
            edge_freq={k: max(0, int(v * factor)) for k, v in self.edge_freq.items()},
        )

    def check_flow_conservation(self, entry: str) -> list[str]:
        """Return labels whose in-edge frequencies do not sum to the node's.

        Entry and exit blocks are exempt (they exchange flow with the
        outside world).  An empty result means the edge profile is
        consistent with the node profile — a property the interpreter's
        output always has, and synthetic profiles should preserve.
        """
        violations = []
        incoming: dict[str, int] = {}
        outgoing: dict[str, int] = {}
        for (src, dst), count in self.edge_freq.items():
            incoming[dst] = incoming.get(dst, 0) + count
            outgoing[src] = outgoing.get(src, 0) + count
        for label, freq in self.node_freq.items():
            if label != entry and incoming.get(label, 0) != freq:
                violations.append(label)
        return violations
