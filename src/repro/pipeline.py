"""End-to-end compilation pipeline.

Mirrors the paper's experimental protocol (Section 5.1):

* the source function is normalised once — unreachable blocks removed,
  while loops restructured to do-while form (Figure 1), critical edges
  split — so all compiles share one CFG shape and profiles transfer;
* a *training run* on the prepared function collects the FDO profile;
* each variant (A: SSAPRE, B: SSAPREsp, C: MC-SSAPRE, plus the MC-PRE and
  ISPRE baselines and an unoptimised control) compiles its own copy;
* the *reference run* measures dynamic cost and per-expression counts.

The pipeline never mutates its input function.  The heavy lifting lives
in :mod:`repro.passes` — :func:`compile_variant` is a compatibility
wrapper over :func:`repro.passes.compiler.compile`, which additionally
returns a structured :class:`~repro.passes.manager.PassReport` on every
:class:`CompiledFunction`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.core.solvers.base import SOLVER_NAMES
from repro.ir.cfg import remove_unreachable_blocks
from repro.ir.function import Function
from repro.ir.transforms import restructure_while_loops, split_critical_edges
from repro.ir.verifier import verify_function
from repro.passes.compiler import (
    VARIANTS,
    CompiledFunction,
    build_pipeline,
)
from repro.passes.compiler import (
    compile as compile_func,
)
from repro.profiles.interp import RunResult, run_function
from repro.profiles.profile import ExecutionProfile

#: The paper's three compiles (Table 1 / Table 2 columns).
PAPER_VARIANTS = ("ssapre", "ssapre-sp", "mc-ssapre")

#: Execution back ends for the train/ref runs.  "compiled" lowers each
#: function once (repro.profiles.compiled) and produces RunResults
#: bit-identical to the tree-walking "reference" interpreter, which is
#: kept as the differential oracle.
ENGINES = ("compiled", "reference")

#: Profiling modes for the train path.  "full" counts every node and
#: edge; "probes" instruments only the minimum coverage probe set
#: (repro.profiles.probes) and reconstructs node frequencies by flow
#: conservation — bit-identical, so the two modes produce the same
#: compiled code.  Probes silently falls back to full counting on CFG
#: shapes outside the certified envelope (multi-exit etc.).
PROFILING_MODES = ("full", "probes")

__all__ = [
    "ENGINES",
    "PROFILING_MODES",
    "VARIANTS",
    "PAPER_VARIANTS",
    "CompiledFunction",
    "Measurement",
    "Experiment",
    "PipelineConfig",
    "prepare",
    "compile_variant",
    "run_experiment",
]


@dataclass(frozen=True)
class PipelineConfig:
    """A cache-keyable description of one compile.

    Frozen and hashable: two equal configs always build the same pipeline
    spec, so ``(function structure, config, engine)`` identifies a
    compiled artifact — the contract :mod:`repro.serve.keys` fingerprints
    with :meth:`canonical`.  ``validate`` is deliberately *not* part of
    the config: it toggles internal checking, never the produced code.
    """

    variant: str = "mc-ssapre"
    fold_constants: bool = False
    cleanup: bool = False
    rounds: int = 1
    #: Speculation solver for the mc-ssapre variant: "mincut", "lospre"
    #: or "auto" (classify the CFG per function; see repro.core.solvers).
    solver: str = "mincut"

    #: Fields deliberately *excluded* from :meth:`canonical` — knobs that
    #: can never change the produced code.  Every other field is keyed by
    #: construction; a field that is neither excluded here nor of a
    #: canonical-safe scalar type makes :meth:`canonical` raise, so a new
    #: knob can never silently alias serve cache keys.
    _CANONICAL_EXCLUDE = frozenset()

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise ValueError(
                f"unknown variant {self.variant!r}; expected one of {VARIANTS}"
            )
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.solver not in SOLVER_NAMES:
            raise ValueError(
                f"unknown solver {self.solver!r}; expected one of {SOLVER_NAMES}"
            )
        if self.solver != "mincut" and self.variant != "mc-ssapre":
            raise ValueError(
                f"solver={self.solver!r} applies only to the mc-ssapre "
                f"variant, not {self.variant!r}"
            )

    def stages(self):
        """The pipeline spec this config describes (a list of passes)."""
        return build_pipeline(
            self.variant,
            fold_constants=self.fold_constants,
            cleanup=self.cleanup,
            rounds=self.rounds,
            solver=self.solver,
        )

    def resolved(self, func: Function) -> "PipelineConfig":
        """This config with ``solver="auto"`` resolved for *func*.

        The shape classifier is deterministic from function structure, so
        the resolution is stable — the serving layer keys artifacts by
        the resolved config, making ``auto`` share cache entries with
        whichever forced solver it picks.
        """
        if self.solver != "auto":
            return self
        from repro.core.solvers.shape import select_solver

        name, _ = select_solver(func, "auto")
        return dataclasses.replace(self, solver=name)

    def canonical(self) -> str:
        """A stable one-line rendering, suitable for hashing.

        Derived from the dataclass fields *by construction*: every field
        participates, in declaration order, unless it is named in
        :data:`_CANONICAL_EXCLUDE`; booleans render as 0/1.  A field
        whose value is not a canonical-safe scalar (bool/int/str) raises
        — classify it explicitly (make it renderable or exclude it)
        before it can alias cache keys.  Reordering or renaming fields
        re-keys every cached artifact; bump
        :data:`repro.serve.keys.KEY_SCHEMA` when that is the intent.
        """
        parts = []
        for spec in dataclasses.fields(self):
            if spec.name in self._CANONICAL_EXCLUDE:
                continue
            value = getattr(self, spec.name)
            if isinstance(value, bool):
                rendered = str(int(value))
            elif isinstance(value, (int, str)):
                rendered = str(value)
            else:
                raise TypeError(
                    f"PipelineConfig field {spec.name!r} has no canonical "
                    f"rendering for {type(value).__name__} values; add it "
                    "to _CANONICAL_EXCLUDE or make it a bool/int/str"
                )
            parts.append(f"{spec.name}={rendered}")
        return ";".join(parts)

    @property
    def needs_profile(self) -> bool:
        """True when this config's variant requires an execution profile."""
        return self.variant in ("mc-ssapre", "mc-pre", "ispre")


def make_runner(engine: str):
    """``(func, args, max_steps, cache=None) -> RunResult`` for *engine*.

    The ``cache`` argument is an optional
    :class:`~repro.passes.cache.AnalysisCache` bound to ``func``; the
    compiled engine memoises its lowering there, the reference engine
    ignores it.
    """
    if engine == "reference":
        def run(func, args, max_steps, cache=None):
            return run_function(func, args, max_steps=max_steps)

        return run
    if engine == "compiled":
        from repro.profiles.compiled import run_compiled

        def run(func, args, max_steps, cache=None):
            return run_compiled(func, args, max_steps=max_steps, cache=cache)

        return run
    raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")


def prepare(func: Function, restructure: bool = True) -> Function:
    """Normalise a non-SSA source function for optimisation and profiling."""
    prepared = func.clone()
    remove_unreachable_blocks(prepared)
    if restructure:
        restructure_while_loops(prepared)
    split_critical_edges(prepared)
    verify_function(prepared)
    return prepared


def compile_variant(
    prepared: Function,
    variant: str | None = None,
    profile: ExecutionProfile | None = None,
    validate: bool = False,
    fold_constants: bool = False,
    cleanup: bool = False,
    rounds: int = 1,
    solver: str = "mincut",
    config: PipelineConfig | None = None,
) -> CompiledFunction:
    """Compile one PRE variant of an already-prepared function.

    SSA-based variants construct SSA, optimise, then translate out of SSA
    so all variants are measured in the same (non-SSA) execution model.
    CFG-based baselines run directly on the non-SSA form.

    ``fold_constants`` runs SCCP before PRE; ``cleanup`` runs copy
    propagation + DCE after PRE (both SSA-variant only) — the neighbours
    PRE sits between in a production pipeline.  ``rounds > 1`` selects
    the iterative rank-ordered worklist form of the SSA-based PRE stage;
    ``solver`` picks the mc-ssapre speculation back end (mincut, lospre
    or auto — see :mod:`repro.core.solvers`).
    A :class:`PipelineConfig` may be passed instead of the individual
    flags (the serving layer's cache-keyable form); mixing both is an
    error.  This is a thin wrapper over
    :func:`repro.passes.compiler.compile` with the flags translated into
    pipeline stages.
    """
    if config is not None:
        if (
            variant is not None
            or fold_constants
            or cleanup
            or rounds != 1
            or solver != "mincut"
        ):
            raise ValueError(
                "pass either a PipelineConfig or individual flags, not both"
            )
    else:
        if variant is None:
            raise ValueError("compile_variant needs a variant or a config")
        config = PipelineConfig(
            variant=variant,
            fold_constants=fold_constants,
            cleanup=cleanup,
            rounds=rounds,
            solver=solver,
        )
    return compile_func(
        prepared,
        config.variant,
        profile,
        pipeline_spec=config.stages(),
        validate=validate,
    )


@dataclass
class Measurement:
    """Reference-run measurement of one compiled variant."""

    variant: str
    dynamic_cost: int
    expr_counts: dict[tuple, int]
    observable: tuple
    compiled: CompiledFunction


@dataclass
class Experiment:
    """A full FDO experiment on one function."""

    prepared: Function
    train_result: RunResult
    measurements: dict[str, Measurement] = field(default_factory=dict)

    def cost(self, variant: str) -> int:
        return self.measurements[variant].dynamic_cost

    def speedup(self, slower: str, faster: str) -> float:
        """Fractional improvement of *faster* over *slower* ((s-f)/s)."""
        s = self.cost(slower)
        f = self.cost(faster)
        return (s - f) / s if s else 0.0


def run_experiment(
    source: Function,
    train_args: list[int],
    ref_args: list[int],
    variants: tuple[str, ...] = PAPER_VARIANTS,
    restructure: bool = True,
    validate: bool = False,
    max_steps: int = 5_000_000,
    engine: str = "compiled",
    rounds: int = 1,
    profiling: str = "full",
) -> Experiment:
    """Prepare, profile with the train input, compile variants, measure.

    Raises if any variant changes the program's observable behaviour —
    the pipeline doubles as the semantic-equivalence harness.  ``engine``
    selects the execution back end (both produce bit-identical
    :class:`RunResult` data; "reference" is the differential oracle).
    ``rounds`` is forwarded to the SSA-based variants (iterative
    worklist); CFG baselines ignore it and stay one-shot.  ``profiling``
    selects how the *train* run counts: ``"full"`` instruments every
    node and edge, ``"probes"`` only the minimum coverage probe set
    (:mod:`repro.profiles.probes`), reconstructing identical node
    frequencies — so the optimisation decisions, and therefore the
    compiled variants, cannot differ between the two modes.
    """
    from repro.passes.cache import AnalysisCache

    if profiling not in PROFILING_MODES:
        raise ValueError(
            f"unknown profiling mode {profiling!r}; "
            f"expected one of {PROFILING_MODES}"
        )
    execute = make_runner(engine)
    prepared = prepare(source, restructure=restructure)
    prepared_cache = AnalysisCache(prepared)
    if profiling == "probes":
        from repro.profiles.probes import run_probed

        train = run_probed(
            prepared, train_args, max_steps, engine=engine
        ).result
    else:
        train = execute(prepared, train_args, max_steps, cache=prepared_cache)
    experiment = Experiment(prepared=prepared, train_result=train)

    reference = execute(prepared, ref_args, max_steps, cache=prepared_cache)
    expected = reference.observable()

    for variant in variants:
        variant_rounds = rounds if variant in PAPER_VARIANTS else 1
        compiled = compile_variant(
            prepared, variant, profile=train.profile, validate=validate,
            rounds=variant_rounds,
        )
        measured = execute(
            compiled.func, ref_args, max_steps, cache=compiled.cache
        )
        if measured.observable() != expected:
            raise AssertionError(
                f"variant {variant!r} changed observable behaviour of "
                f"{source.name!r}"
            )
        experiment.measurements[variant] = Measurement(
            variant=variant,
            dynamic_cost=measured.dynamic_cost,
            expr_counts=measured.expr_counts,
            observable=measured.observable(),
            compiled=compiled,
        )
    if "none" not in experiment.measurements:
        experiment.measurements.setdefault(
            "none",
            Measurement(
                variant="none",
                dynamic_cost=reference.dynamic_cost,
                expr_counts=reference.expr_counts,
                observable=expected,
                compiled=CompiledFunction(variant="none", func=prepared),
            ),
        )
    return experiment
