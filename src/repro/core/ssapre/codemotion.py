"""SSAPRE step 6 — CodeMotion.

Applies a :class:`~repro.core.ssapre.finalize.FinalizePlan` to the
function, keeping it in valid SSA form:

* every save ``x = a+b`` becomes ``t.v = a+b ; x = t.v``;
* every reload ``x = a+b`` becomes ``x = t.v_def``;
* every insertion appends ``t.v = a+b`` at the end of the predecessor
  block named by the Φ operand, with the operand versions captured there
  during Rename;
* every surviving Φ becomes a real phi of ``t``.

The PRE temporary gets a fresh base name per expression class and one SSA
version per definition, so the output is verifiable SSA and subsequent
classes can be processed on the updated function.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ssapre.finalize import FinalizePlan, TDef
from repro.ir.function import Function
from repro.ir.instructions import Assign, Phi
from repro.ir.values import Var


@dataclass
class CodeMotionReport:
    """What CodeMotion did — consumed by benchmarks and tests."""

    expr: str
    temp_name: str | None
    saves: int
    reloads: int
    insertions: int
    phis: int

    @property
    def changed(self) -> bool:
        return bool(self.reloads or self.insertions)


def apply_code_motion(func: Function, plan: FinalizePlan) -> CodeMotionReport:
    """Rewrite *func* in place according to *plan*."""
    frg = plan.frg
    if not plan.has_effect():
        return CodeMotionReport(
            expr=str(frg.expr),
            temp_name=None,
            saves=0,
            reloads=0,
            insertions=0,
            phis=0,
        )

    temp = func.fresh_temp("%pre")

    # Assign one SSA version of the temporary to every t-definition.
    version_of: dict[int, int] = {}
    next_version = 0

    def define(node: TDef) -> Var:
        nonlocal next_version
        if id(node) not in version_of:
            next_version += 1
            version_of[id(node)] = next_version
        return Var(temp.name, version_of[id(node)])

    # 1. Materialise phis of t (targets defined first so args can refer).
    for phi in plan.t_phis:
        define(phi)
    for occ in plan.saves:
        define(occ)
    for node in plan.insertions.values():
        define(node)

    for phi in plan.t_phis:
        args = {
            pred: define(node) for pred, node in plan.t_phi_args[id(phi)].items()
        }
        func.blocks[phi.label].phis.append(Phi(Var(temp.name, version_of[id(phi)]), args))

    # 2. Insertions at predecessor-block ends.
    for node in plan.insertions.values():
        block = func.blocks[node.pred]
        rhs = frg.expr.make_rhs(tuple(node.operand_values))  # type: ignore[arg-type]
        block.body.append(Assign(define(node), rhs))

    # 3. Rewrite saves and reloads (touching only the affected blocks).
    replacements: dict[int, list[Assign]] = {}
    touched: set[str] = set()
    for occ in plan.saves:
        tvar = define(occ)
        replacements[id(occ.stmt)] = [
            Assign(tvar, occ.stmt.rhs),
            Assign(occ.stmt.target, tvar),
        ]
        touched.add(occ.label)
    for occ in plan.occ_reload:
        definition = plan.reloads[id(occ)]
        replacements[id(occ.stmt)] = [Assign(occ.stmt.target, define(definition))]
        touched.add(occ.label)

    for label in touched:
        block = func.blocks[label]
        new_body = []
        for stmt in block.body:
            new_body.extend(replacements.get(id(stmt), [stmt]))
        block.body = new_body

    return CodeMotionReport(
        expr=str(frg.expr),
        temp_name=temp.name,
        saves=len(plan.saves),
        reloads=len(plan.reloads),
        insertions=len(plan.insertions),
        phis=len(plan.t_phis),
    )

