"""Two-tier artifact store: LRU order, disk round-trip, corruption."""

import pickle

from repro.serve.store import (
    ARTIFACT_SCHEMA,
    ArtifactStore,
    DiskStore,
    MemoryStore,
)

from tests.conftest import build_diamond, build_straightline, build_while_loop
from tests.serve.conftest import make_artifact


def _three_artifacts():
    return [
        make_artifact(build_diamond()),
        make_artifact(build_while_loop()),
        make_artifact(build_straightline()),
    ]


class TestMemoryStore:
    def test_lru_eviction_order(self):
        (ka, a), (kb, b), (kc, c) = _three_artifacts()
        store = MemoryStore(max_entries=2)
        store.put(ka, a)
        store.put(kb, b)
        assert store.get(ka) is a  # refresh a: b is now least recent
        evicted = store.put(kc, c)
        assert evicted == [kb]
        assert store.get(kb) is None
        assert store.get(ka) is a
        assert store.get(kc) is c
        assert store.evictions == 1

    def test_byte_bound_evicts_oldest(self):
        (ka, a), (kb, b), _ = _three_artifacts()
        store = MemoryStore(
            max_entries=10, max_bytes=a.nbytes() + b.nbytes() - 1
        )
        store.put(ka, a)
        assert store.put(kb, b) == [ka]
        assert store.bytes_used() == b.nbytes()

    def test_oversized_artifact_still_caches(self):
        (ka, a), _, _ = _three_artifacts()
        store = MemoryStore(max_entries=10, max_bytes=1)
        assert store.put(ka, a) == []
        assert store.get(ka) is a

    def test_reput_same_key_does_not_grow(self):
        (ka, a), _, _ = _three_artifacts()
        store = MemoryStore(max_entries=4)
        store.put(ka, a)
        store.put(ka, a)
        assert len(store) == 1
        assert store.bytes_used() == a.nbytes()


class TestDiskStore:
    def test_round_trip_executes_identically(self, tmp_path, diamond_artifact):
        key, artifact = diamond_artifact
        disk = DiskStore(tmp_path)
        disk.put(key, artifact)
        loaded = DiskStore(tmp_path).get(key)
        assert loaded is not None
        assert loaded.key == key
        assert loaded.variant == artifact.variant
        args = [4, 5, 1]
        assert loaded.program.run(args).observable() == (
            artifact.program.run(args).observable()
        )
        assert loaded.program.run(args).dynamic_cost == (
            artifact.program.run(args).dynamic_cost
        )

    def test_truncated_file_is_a_miss_not_a_crash(
        self, tmp_path, diamond_artifact
    ):
        key, artifact = diamond_artifact
        disk = DiskStore(tmp_path)
        disk.put(key, artifact)
        path = disk.path(key)
        path.write_bytes(path.read_bytes()[: 20])
        assert disk.get(key) is None
        assert disk.corrupt == 1
        assert not path.exists()  # quarantined out of the way
        assert disk.get(key) is None  # stays a clean miss

    def test_garbage_file_is_a_miss(self, tmp_path, diamond_artifact):
        key, artifact = diamond_artifact
        disk = DiskStore(tmp_path)
        disk.put(key, artifact)
        disk.path(key).write_bytes(b"not a pickle at all")
        assert disk.get(key) is None
        assert disk.corrupt == 1

    def test_wrong_schema_is_a_miss(self, tmp_path, diamond_artifact):
        key, artifact = diamond_artifact
        artifact.schema = ARTIFACT_SCHEMA + 1
        disk = DiskStore(tmp_path)
        disk.put(key, artifact)
        assert disk.get(key) is None
        assert disk.corrupt == 1

    def test_wrong_key_in_file_is_a_miss(self, tmp_path, diamond_artifact):
        key, artifact = diamond_artifact
        disk = DiskStore(tmp_path)
        disk.put(key, artifact)
        hijack = "f" * len(key)
        disk.path(hijack).parent.mkdir(parents=True, exist_ok=True)
        disk.path(hijack).write_bytes(pickle.dumps(artifact))
        assert disk.get(hijack) is None
        assert disk.corrupt == 1

    def test_missing_key_is_a_plain_miss(self, tmp_path):
        disk = DiskStore(tmp_path)
        assert disk.get("0" * 64) is None
        assert disk.corrupt == 0

    def test_keys_listing(self, tmp_path):
        disk = DiskStore(tmp_path)
        pairs = _three_artifacts()
        for key, artifact in pairs:
            disk.put(key, artifact)
        assert disk.keys() == sorted(key for key, _ in pairs)


class TestArtifactStore:
    def test_disk_hit_promotes_to_memory(self, tmp_path, diamond_artifact):
        key, artifact = diamond_artifact
        ArtifactStore.with_disk(tmp_path).put(key, artifact)
        fresh = ArtifactStore.with_disk(tmp_path)  # models a restart
        _, tier = fresh.get(key)
        assert tier == "disk"
        _, tier = fresh.get(key)
        assert tier == "memory"

    def test_memory_only_store_misses_cleanly(self, diamond_artifact):
        key, artifact = diamond_artifact
        store = ArtifactStore()
        assert store.get(key) == (None, None)
        store.put(key, artifact)
        got, tier = store.get(key)
        assert got is artifact
        assert tier == "memory"
        assert store.disk_corrupt == 0

    def test_corruption_counter_surfaces(self, tmp_path, diamond_artifact):
        key, artifact = diamond_artifact
        store = ArtifactStore.with_disk(tmp_path)
        store.put(key, artifact)
        store.disk.path(key).write_bytes(b"garbage")
        fresh = ArtifactStore.with_disk(tmp_path)
        assert fresh.get(key) == (None, None)
        assert fresh.disk_corrupt == 1
