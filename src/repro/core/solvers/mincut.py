"""The flow-network speculation solver (the paper's steps 5–7).

Wraps the essential-flow-graph construction
(:mod:`repro.core.mcssapre.efg`) and the reverse-labelled minimum cut
(:mod:`repro.core.mcssapre.cut`, :mod:`repro.flownet`) behind the
:class:`~repro.core.solvers.base.SpeculationSolver` interface.  The flow
network is built, solved and discarded entirely inside :meth:`solve` —
no other layer sees it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.solvers.base import SolverDecision, SpeculationSolver

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.mcssapre.reduction import ReducedGraph
    from repro.profiles.profile import ExecutionProfile


class MinCutSolver(SpeculationSolver):
    """Single-source single-sink min cut with sink-side tie-breaking.

    ``sink_closest=False`` selects the source-side cut instead; it
    exists only for the lifetime ablation benchmark and forfeits
    lifetime (never computational) optimality.
    """

    name = "mincut"

    def __init__(self, sink_closest: bool = True) -> None:
        self.sink_closest = sink_closest

    def solve(
        self, reduced: "ReducedGraph", profile: "ExecutionProfile"
    ) -> SolverDecision | None:
        from repro.core.mcssapre.cut import solve_min_cut
        from repro.core.mcssapre.efg import build_efg

        efg = build_efg(reduced, profile)
        if efg is None:  # no SPR occurrence: nothing to place
            return None
        cut = solve_min_cut(efg, sink_closest=self.sink_closest)
        return SolverDecision(
            solver=self.name,
            cut_value=cut.cut.value,
            insert_operands=cut.insert_operands,
            in_place_occs=cut.in_place_occs,
            nodes=efg.node_count,
            edges=efg.edge_count,
        )
