"""A3 (extension) — MC-SSAPRE as a code-size optimiser (paper Section 6).

Compiling with a unit profile makes the min cut count *static*
occurrences, so the same machinery minimises code size.  This bench
measures, per benchmark, the static occurrence reduction across all
expression classes and checks it never regresses.
"""

import copy

from conftest import SUITE_SUBSET, emit

from repro.bench.workloads import load_workload
from repro.core.mcssapre.driver import run_mc_ssapre
from repro.ir.instructions import Assign, BinOp, UnaryOp
from repro.pipeline import prepare
from repro.profiles.profile import ExecutionProfile
from repro.ssa.construct import construct_ssa


def static_occurrence_total(func) -> int:
    return sum(
        1
        for block in func
        for stmt in block.body
        if isinstance(stmt, Assign) and isinstance(stmt.rhs, (BinOp, UnaryOp))
    )


def compile_for_size(name: str) -> tuple[int, int]:
    workload = load_workload(name)
    prepared = prepare(workload.program.func)
    before = static_occurrence_total(prepared)
    ssa = copy.deepcopy(prepared)
    construct_ssa(ssa)
    run_mc_ssapre(ssa, ExecutionProfile.unit(ssa))
    after = static_occurrence_total(ssa)
    return before, after


def test_size_objective(benchmark):
    benchmark.pedantic(
        compile_for_size, args=(SUITE_SUBSET[0],), rounds=1, iterations=1
    )

    rows = []
    total_before = total_after = 0
    for name in SUITE_SUBSET:
        before, after = compile_for_size(name)
        assert after <= before, name
        rows.append(
            f"  {name:<12} static computations: {before:>5} -> {after:<5} "
            f"({(before - after) / before:.1%} smaller)"
        )
        total_before += before
        total_after += after

    rows.append(
        f"  TOTAL        static computations: {total_before} -> {total_after} "
        f"({(total_before - total_after) / total_before:.1%} smaller)"
    )
    emit("Extension A3 (code-size objective via unit profile)", "\n".join(rows))
    assert total_after < total_before
