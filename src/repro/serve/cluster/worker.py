"""Worker subprocess lifecycle: spawn, probe, restart.

A cluster worker is just ``python -m repro.serve serve --port 0`` with
the shared ``--cache-dir``/``--lock-dir`` and the plan cache enabled —
the same JSON-lines TCP server operators already run by hand, so a
worker is individually debuggable with ``nc``.  The handle here owns
the subprocess: it parses the ``serving on host:port`` banner to learn
the ephemeral port, keeps draining stderr (so a chatty worker can never
fill the pipe and wedge), answers liveness probes via the in-band
``{"cmd": "ping"}`` protocol message, and restarts the process in place
after a crash.  A restarted worker keeps its ``worker_id``, so its ring
position — and therefore key ownership — is unchanged; it simply comes
back cold in memory and re-warms from the shared disk tier.
"""

from __future__ import annotations

import json
import socket
import subprocess
import sys
import threading
import time
from typing import Optional

#: How long to wait for a freshly spawned worker's banner.
DEFAULT_SPAWN_TIMEOUT_S = 30.0

__all__ = ["DEFAULT_SPAWN_TIMEOUT_S", "WorkerHandle", "probe_worker"]


def probe_worker(
    host: str, port: int, timeout: float = 5.0, cmd: str = "ping"
) -> Optional[dict]:
    """One request/response exchange on a fresh connection, or ``None``.

    Used for liveness probes (``cmd="ping"``) and metrics collection
    (``cmd="metrics"``); any connect/protocol failure reads as "down".
    """
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.settimeout(timeout)
            sock.sendall((json.dumps({"cmd": cmd}) + "\n").encode())
            reader = sock.makefile("r", encoding="utf-8")
            line = reader.readline()
        return json.loads(line) if line else None
    except (OSError, ValueError):
        return None


class WorkerHandle:
    """One supervised worker process and its serving address."""

    def __init__(
        self,
        worker_id: str,
        *,
        cache_dir: str,
        lock_dir: str,
        plan_cache: int = 64,
        threads: int = 2,
        max_entries: int = 256,
        host: str = "127.0.0.1",
        spawn_timeout_s: float = DEFAULT_SPAWN_TIMEOUT_S,
    ) -> None:
        self.worker_id = worker_id
        self.host = host
        self.port: Optional[int] = None
        self.cache_dir = cache_dir
        self.lock_dir = lock_dir
        self.plan_cache = plan_cache
        self.threads = threads
        self.max_entries = max_entries
        self.spawn_timeout_s = spawn_timeout_s
        self.restarts = 0
        self._proc: Optional[subprocess.Popen] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._proc is not None and self._proc.poll() is None:
            return
        argv = [
            sys.executable, "-m", "repro.serve", "serve",
            "--port", "0", "--host", self.host,
            "--cache-dir", self.cache_dir,
            "--lock-dir", self.lock_dir,
            "--plan-cache", str(self.plan_cache),
            "--workers", str(self.threads),
            "--max-entries", str(self.max_entries),
        ]
        self._proc = subprocess.Popen(
            argv,
            stdin=subprocess.DEVNULL,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.port = self._await_banner()
        # Keep the pipe drained for the rest of the process's life.
        threading.Thread(
            target=self._drain_stderr,
            name=f"repro-worker-{self.worker_id}-stderr",
            daemon=True,
        ).start()

    def _await_banner(self) -> int:
        assert self._proc is not None and self._proc.stderr is not None
        deadline = time.monotonic() + self.spawn_timeout_s
        while time.monotonic() < deadline:
            line = self._proc.stderr.readline()
            if not line:
                raise RuntimeError(
                    f"worker {self.worker_id} exited before its banner "
                    f"(rc={self._proc.poll()})"
                )
            if line.startswith("serving on "):
                return int(line.rsplit(":", 1)[1])
        raise RuntimeError(
            f"worker {self.worker_id} produced no banner within "
            f"{self.spawn_timeout_s:g}s"
        )

    def _drain_stderr(self) -> None:
        proc = self._proc
        if proc is None or proc.stderr is None:
            return
        try:
            for _line in proc.stderr:
                pass
        except ValueError:  # pipe closed during shutdown
            pass

    # ------------------------------------------------------------------
    def alive(self) -> bool:
        return self._proc is not None and self._proc.poll() is None

    def healthy(self, timeout: float = 5.0) -> bool:
        """Process up *and* answering the in-band ping."""
        if not self.alive() or self.port is None:
            return False
        answer = probe_worker(self.host, self.port, timeout=timeout)
        return bool(answer and answer.get("pong"))

    def metrics(self, timeout: float = 10.0) -> Optional[dict]:
        if self.port is None:
            return None
        return probe_worker(self.host, self.port, timeout=timeout, cmd="metrics")

    def restart(self) -> None:
        """Replace a dead (or wedged) process; ring identity is kept."""
        self.stop()
        self.restarts += 1
        self.start()

    def stop(self, timeout: float = 5.0) -> None:
        proc, self._proc = self._proc, None
        self.port = None
        if proc is None:
            return
        if proc.poll() is None:
            proc.terminate()
            try:
                proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=timeout)
        if proc.stderr is not None:
            proc.stderr.close()

    def kill(self) -> None:
        """Hard-kill the process (tests use this to simulate a crash)."""
        if self._proc is not None and self._proc.poll() is None:
            self._proc.kill()
            self._proc.wait(timeout=5.0)

    def describe(self) -> dict:
        return {
            "worker_id": self.worker_id,
            "host": self.host,
            "port": self.port,
            "alive": self.alive(),
            "restarts": self.restarts,
        }
