"""Tests for the interpreter/profiler."""

import pytest

from repro.ir.builder import FunctionBuilder
from repro.profiles.interp import InterpreterError, run_function


class TestExecution:
    def test_return_value(self, straightline):
        run = run_function(straightline, [2, 3])
        assert run.return_value == (2 + 3) * (2 + 3)

    def test_output_trace(self, while_loop):
        b = FunctionBuilder("f", params=["n"])
        b.block("entry")
        b.output("n")
        b.assign("m", "mul", "n", 2)
        b.output("m")
        b.ret("m")
        run = run_function(b.build(), [21])
        assert run.output == [21, 42]
        assert run.observable() == (42, (21, 42))

    def test_loop_iterates_correctly(self, while_loop):
        # body does acc += (a+b) for n iterations
        run = run_function(while_loop, [2, 3, 5])
        assert run.return_value == 5 * (2 + 3)

    def test_wrong_arity_rejected(self, straightline):
        with pytest.raises(InterpreterError):
            run_function(straightline, [1])

    def test_undefined_read_rejected(self):
        b = FunctionBuilder("f")
        b.block("entry")
        b.copy("x", "ghost")
        b.ret("x")
        with pytest.raises(InterpreterError):
            run_function(b.build(), [])

    def test_step_limit(self, while_loop):
        with pytest.raises(InterpreterError):
            run_function(while_loop, [0, 0, 10**9], max_steps=100)

    def test_void_return(self):
        b = FunctionBuilder("f")
        b.block("entry")
        b.ret()
        assert run_function(b.build(), []).return_value is None


class TestProfile:
    def test_node_frequencies(self, while_loop):
        run = run_function(while_loop, [0, 0, 4])
        profile = run.profile
        assert profile.node("entry") == 1
        assert profile.node("head") == 5   # 4 iterations + exit test
        assert profile.node("body") == 4
        assert profile.node("done") == 1

    def test_edge_frequencies(self, while_loop):
        run = run_function(while_loop, [0, 0, 4])
        profile = run.profile
        assert profile.edge("entry", "head") == 1
        assert profile.edge("body", "head") == 4
        assert profile.edge("head", "body") == 4
        assert profile.edge("head", "done") == 1

    def test_flow_conservation(self, while_loop):
        run = run_function(while_loop, [0, 0, 7])
        assert run.profile.check_flow_conservation("entry") == []

    def test_branch_both_ways(self, diamond):
        taken = run_function(diamond, [1, 2, 1]).profile
        assert taken.node("left") == 1 and taken.node("right") == 0
        untaken = run_function(diamond, [1, 2, 0]).profile
        assert untaken.node("left") == 0 and untaken.node("right") == 1


class TestCostAndCounts:
    def test_expr_counts_keyed_lexically(self, straightline):
        run = run_function(straightline, [1, 1])
        ab = ("add", ("var", "a"), ("var", "b"))
        assert run.expr_counts[ab] == 2

    def test_cost_respects_op_table(self):
        b = FunctionBuilder("f", params=["a"])
        b.block("entry")
        b.assign("x", "mul", "a", "a")  # cost 4
        b.assign("y", "add", "x", 1)    # cost 1
        b.copy("z", "y")                # cost 0
        b.ret("z")
        run = run_function(b.build(), [3])
        assert run.dynamic_cost == 5

    def test_branch_cost_counted(self, diamond):
        run = run_function(diamond, [1, 2, 1])
        # add (1) at left + add (1) at join + branch (1)
        assert run.dynamic_cost == 3

    def test_loop_cost_scales_with_iterations(self, while_loop):
        short = run_function(while_loop, [1, 1, 2]).dynamic_cost
        long = run_function(while_loop, [1, 1, 20]).dynamic_cost
        assert long > short


class TestSSAExecution:
    def test_phi_selects_by_incoming_edge(self, diamond):
        from repro.ssa.construct import construct_ssa

        reference = [
            run_function(diamond, [5, 6, taken]).observable()
            for taken in (0, 1)
        ]
        construct_ssa(diamond)
        got = [
            run_function(diamond, [5, 6, taken]).observable()
            for taken in (0, 1)
        ]
        assert got == reference

    def test_parallel_phi_reads(self):
        """Loop-carried swap via phis must read old values in parallel."""
        from repro.ir.values import Var
        from repro.ssa.ssa_verifier import verify_ssa

        b = FunctionBuilder("swap", params=["n"])
        b.block("entry")
        b.jump("head")
        b.block("head")
        b.phi(Var("x", 2), entry=1, body=Var("y", 2))
        b.phi(Var("y", 2), entry=2, body=Var("x", 2))
        b.phi(Var("i", 2), entry=0, body=Var("i", 3))
        b.assign(Var("c", 1), "lt", Var("i", 2), Var("n", 1))
        b.branch(Var("c", 1), "body", "done")
        b.block("body")
        b.assign(Var("i", 3), "add", Var("i", 2), 1)
        b.jump("head")
        b.block("done")
        b.assign(Var("r", 1), "mul", Var("x", 2), 10)
        b.assign(Var("r", 2), "add", Var("r", 1), Var("y", 2))
        b.ret(Var("r", 2))
        func = b.build()
        func.params = [Var("n", 1)]
        verify_ssa(func)
        assert run_function(func, [0]).return_value == 12
        assert run_function(func, [1]).return_value == 21
        assert run_function(func, [2]).return_value == 12
