"""Content-addressed cache keys for compiled artifacts.

An artifact — an optimised function plus its lowered
:class:`~repro.profiles.compiled.CompiledProgram` and pass report — is a
pure function of three inputs:

1. the *structure* of the prepared source function,
2. the pipeline configuration (:class:`~repro.pipeline.PipelineConfig`),
3. the profile the optimiser was trained on.

The key therefore hashes exactly those three, nothing else.  Structural
identity uses the printer's normalization mode
(:func:`repro.ir.printer.format_function` with ``normalize=True``):
SSA version renumbering — the classic source of spurious cache misses,
since value ids depend on construction order — never changes the key,
while any semantic difference does.

Profiles are keyed either *extensionally* (hashing the sorted node/edge
counts of an explicit :class:`~repro.profiles.profile.ExecutionProfile`)
or *intensionally* (hashing the training argument vector plus the
deterministic engine that will produce the profile) — the serving layer
uses the intensional form so a request never has to ship a profile.

Keys are ``sha256`` hex digests over a versioned canonical payload;
bump :data:`KEY_SCHEMA` whenever the payload layout changes so stale
on-disk artifacts can never be misread as current ones.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable

from repro.ir.function import Function
from repro.ir.printer import format_function, normalize_versions
from repro.pipeline import PipelineConfig
from repro.profiles.profile import ExecutionProfile

#: Version of the canonical key payload.  Changing how any section is
#: rendered requires a bump: old artifacts then miss (and are recompiled)
#: instead of being served under a stale interpretation.
#: 2: PipelineConfig.canonical() is now derived from the dataclass fields
#:    (full field names, solver knob included).
#: 3: the function fingerprint gains an ``arrays:`` section (name/length
#:    of every declared array).  Array lengths decide which load classes
#:    are provably in-bounds — i.e. how aggressively the compile may
#:    speculate — so two sources differing only in a declared length must
#:    never share an artifact.
KEY_SCHEMA = 3

__all__ = [
    "KEY_SCHEMA",
    "function_fingerprint",
    "profile_fingerprint",
    "artifact_key",
    "structural_key",
]


def _digest(sections: Iterable[str]) -> str:
    hasher = hashlib.sha256()
    for section in sections:
        payload = section.encode()
        # Length-prefix each section so no concatenation of different
        # sections can collide with another split of the same bytes.
        hasher.update(f"{len(payload)}:".encode())
        hasher.update(payload)
    return hasher.hexdigest()


def function_fingerprint(func: Function) -> str:
    """A structural fingerprint of *func*, stable across value renumbering.

    Two functions fingerprint identically iff their normalized printed
    forms coincide — same blocks, same instructions, same CFG — no matter
    how their SSA versions were numbered.  The function *name* is
    deliberately excluded: serving identical bodies under different names
    must share one artifact.
    """
    normalized = normalize_versions(func)
    text = format_function(normalized)
    # Drop the header line (it carries the function name); parameters and
    # the array environment are re-rendered separately — from the
    # *normalized* function, so their SSA versions cannot leak
    # construction order into the key — and arity, parameter naming and
    # every declared array's length still count.  Array lengths gate the
    # in-bounds speculation refinement, so they are key material even
    # when the bodies coincide.
    body = text.split("\n", 1)[1] if "\n" in text else text
    params = ",".join(str(p) for p in normalized.params)
    arrays = ",".join(
        f"{name}:{length}" for name, length in sorted(normalized.arrays.items())
    )
    return _digest((f"params:{params}", f"arrays:{arrays}", body))


def profile_fingerprint(profile: ExecutionProfile) -> str:
    """An extensional fingerprint of a profile's node and edge counts."""
    nodes = ";".join(
        f"{label}={count}"
        for label, count in sorted(profile.node_freq.items())
        if count
    )
    edges = ";".join(
        f"{src}->{dst}={count}"
        for (src, dst), count in sorted(profile.edge_freq.items())
        if count
    )
    return _digest((f"nodes:{nodes}", f"edges:{edges}"))


def artifact_key(
    func: Function,
    config: PipelineConfig,
    *,
    engine: str = "compiled",
    train_args: Iterable[int] | None = None,
    profile: ExecutionProfile | None = None,
) -> str:
    """The content address of one compiled artifact.

    ``engine`` is the execution back end whose training run produces the
    profile (and whose lowered program the artifact carries) — the
    "profile engine" of the serving layer.  Exactly one of ``train_args``
    (intensional: the profile will be derived deterministically from the
    function, the engine and these arguments) or ``profile``
    (extensional: hash the counts themselves) must be provided for
    profile-guided configs; profile-free configs may omit both.

    ``solver="auto"`` is keyed by the solver it *resolves to* for this
    function (the shape classifier is deterministic from function
    structure), so an auto request shares its artifact with the forced
    solver it would pick — and two configs that place code differently
    can never collide on one key.
    """
    config = config.resolved(func)
    if profile is not None and train_args is not None:
        raise ValueError("pass either train_args or profile, not both")
    if profile is None and train_args is None and config.needs_profile:
        raise ValueError(
            f"variant {config.variant!r} is profile-guided; the key needs "
            "train_args or an explicit profile"
        )
    if profile is not None:
        profile_part = f"profile:{profile_fingerprint(profile)}"
    elif train_args is not None:
        profile_part = "train:" + ",".join(str(a) for a in train_args)
    else:
        profile_part = "unprofiled"
    return _digest((
        f"schema:{KEY_SCHEMA}",
        f"func:{function_fingerprint(func)}",
        f"config:{config.canonical()}",
        f"engine:{engine}",
        profile_part,
    ))


def structural_key(
    func: Function,
    config: PipelineConfig,
    *,
    engine: str = "compiled",
) -> str:
    """The profile-free identity of a served program.

    Everything :func:`artifact_key` hashes *except* the profile: function
    structure, resolved config, engine.  All artifacts compiled for the
    same program under different profiles share one structural key — this
    is the level at which the adaptation tier (:mod:`repro.serve.adapt`)
    accumulates live profiles, detects drift and hot-swaps artifacts:
    the artifact *content* address changes with every fresh profile, the
    structural address never does.
    """
    config = config.resolved(func)
    return _digest((
        f"schema:{KEY_SCHEMA}",
        f"func:{function_fingerprint(func)}",
        f"config:{config.canonical()}",
        f"engine:{engine}",
        "structural",
    ))
