"""Tests for the CFG view."""

import pytest

from repro.ir.builder import FunctionBuilder
from repro.ir.cfg import CFG, count_edges, remove_unreachable_blocks, unreachable_blocks


class TestNeighbourhoods:
    def test_preds_and_succs(self, diamond):
        cfg = CFG(diamond)
        assert set(cfg.successors("entry")) == {"left", "right"}
        assert sorted(cfg.predecessors("join")) == ["left", "right"]
        assert cfg.predecessors("entry") == []

    def test_edges(self, diamond):
        cfg = CFG(diamond)
        edges = set(cfg.edges())
        assert ("entry", "left") in edges
        assert ("left", "join") in edges
        assert len(edges) == 4

    def test_exit_labels(self, diamond):
        cfg = CFG(diamond)
        assert cfg.exit_labels() == ["join"]

    def test_dangling_branch_target_rejected(self):
        b = FunctionBuilder("f")
        b.block("entry")
        b.jump("nowhere")
        with pytest.raises(ValueError):
            CFG(b.build())


class TestCriticalEdges:
    def test_diamond_has_no_critical_edges(self, diamond):
        cfg = CFG(diamond)
        assert not any(cfg.is_critical_edge(u, v) for u, v in cfg.edges())

    def test_critical_edge_detected(self):
        # entry branches to {mid, join}; mid jumps to join;
        # entry->join is critical (entry 2 succs, join 2 preds).
        b = FunctionBuilder("f", params=["c"])
        b.block("entry")
        b.branch("c", "mid", "join")
        b.block("mid")
        b.jump("join")
        b.block("join")
        b.ret()
        cfg = CFG(b.build())
        assert cfg.is_critical_edge("entry", "join")
        assert not cfg.is_critical_edge("entry", "mid")
        assert not cfg.is_critical_edge("mid", "join")

    def test_two_arms_to_same_target_not_critical(self):
        b = FunctionBuilder("f", params=["c"])
        b.block("entry")
        b.branch("c", "next", "next")
        b.block("pre")   # second predecessor of next
        b.jump("next")
        b.block("next")
        b.ret()
        func = b.build()
        # 'pre' is unreachable but still a predecessor structurally.
        cfg = CFG(func)
        assert not cfg.is_critical_edge("entry", "next")


class TestTraversal:
    def test_rpo_starts_at_entry(self, while_loop):
        cfg = CFG(while_loop)
        rpo = cfg.reverse_postorder()
        assert rpo[0] == "entry"
        assert set(rpo) == {"entry", "head", "body", "done"}

    def test_rpo_orders_preds_before_succs_in_dags(self, diamond):
        rpo = CFG(diamond).reverse_postorder()
        assert rpo.index("entry") < rpo.index("left")
        assert rpo.index("left") < rpo.index("join")
        assert rpo.index("right") < rpo.index("join")

    def test_deep_cfg_does_not_recurse(self):
        b = FunctionBuilder("deep")
        b.block("b0")
        for i in range(1, 3000):
            b.jump(f"b{i}")
            b.block(f"b{i}")
        b.ret()
        cfg = CFG(b.build())
        assert len(cfg.reverse_postorder()) == 3000


class TestUnreachable:
    def test_unreachable_detected_and_removed(self):
        b = FunctionBuilder("f")
        b.block("entry")
        b.ret()
        b.block("island")
        b.ret()
        func = b.build()
        assert unreachable_blocks(func) == {"island"}
        removed = remove_unreachable_blocks(func)
        assert removed == ["island"]
        assert set(func.blocks) == {"entry"}

    def test_phi_args_pruned_with_unreachable_pred(self):
        from repro.ir.instructions import Phi
        from repro.ir.values import Var

        b = FunctionBuilder("f")
        b.block("entry")
        b.jump("join")
        b.block("island")
        b.jump("join")
        b.block("join")
        b.ret()
        func = b.build()
        func.blocks["join"].phis.append(
            Phi(Var("x", 1), {"entry": Var("a", 1), "island": Var("b", 1)})
        )
        remove_unreachable_blocks(func)
        assert set(func.blocks["join"].phis[0].args) == {"entry"}


def test_count_edges(diamond):
    cfg = CFG(diamond)
    assert count_edges(cfg) == 4
    assert count_edges(cfg, ["entry", "left"]) == 1
