"""Tests for register-pressure estimation."""

import copy

from repro.analysis.pressure import measure_pressure
from repro.ir.builder import FunctionBuilder
from repro.ssa.construct import construct_ssa
from tests.conftest import as_ssa


class TestBasics:
    def test_straightline_pressure(self):
        b = FunctionBuilder("f", params=["a", "b"])
        b.block("entry")
        b.assign("x", "add", "a", "b")   # a, b, (x) live
        b.assign("y", "mul", "x", "x")   # x live; a, b dead after
        b.ret("y")
        func = b.build()
        construct_ssa(func)
        report = measure_pressure(func)
        # At the first add: a, b live (x being defined).
        assert report.peak >= 2
        assert report.peak_label == "entry"

    def test_disjoint_lifetimes_low_pressure(self):
        b = FunctionBuilder("f", params=["a"])
        b.block("entry")
        b.assign("x", "add", "a", 1)
        b.output("x")
        b.assign("y", "add", "a", 2)
        b.output("y")
        b.ret()
        func = b.build()
        construct_ssa(func)
        report = measure_pressure(func)
        # x and y never live together: pressure stays at 2 (a + one temp).
        assert report.peak == 2

    def test_loop_carried_pressure(self, while_loop):
        ssa = as_ssa(while_loop)
        report = measure_pressure(ssa)
        # head keeps i, acc, n, a, b alive (plus the condition).
        assert report.per_block["head"] >= 5

    def test_weighted_sum(self, while_loop):
        ssa = as_ssa(while_loop)
        report = measure_pressure(ssa)
        weights = {label: 1 for label in ssa.blocks}
        assert report.weighted_sum(weights) == sum(report.per_block.values())


class TestTemporaryAttribution:
    def test_hoisted_temp_live_through_loop(self, while_loop):
        """The hoisted %pre temp is live across the loop — and, notably,
        hoisting can *reduce* total pressure (a and b die early, one temp
        replaces them), so no blanket peak comparison is asserted."""
        from repro.analysis.liveness import compute_liveness
        from repro.core.mcssapre.driver import run_mc_ssapre
        from repro.profiles.interp import run_function

        ssa = as_ssa(while_loop)
        profile = run_function(copy.deepcopy(ssa), [2, 3, 9]).profile
        run_mc_ssapre(ssa, profile.nodes_only())
        liveness = compute_liveness(ssa, by_version=True)
        # The temp's phi lives at head (defined there), so it is live-in
        # at the body (reload) and live-out of the loop's predecessors.
        assert any(
            name.startswith("%pre") for name, _ in liveness.live_in["body"]
        )
        assert any(
            name.startswith("%pre") for name, _ in liveness.live_out["entry"]
        )

    def test_temp_only_pressure_favors_late_cut(self):
        """The pressure attributable to PRE *temporaries* (the quantity
        Theorem 9 is about) is lower with the reverse-labeling cut on the
        running example.  Total pressure can legitimately go either way —
        an early insertion may kill the operands sooner — which is why
        the paper's lifetime optimality is defined over the temporary."""
        from repro.analysis.liveness import compute_liveness
        from repro.core.mcssapre.driver import run_mc_ssapre
        from repro.examples_data.running_example import build_running_example
        from repro.ir.transforms import split_critical_edges

        ex = build_running_example()

        def temp_pressure(sink_closest) -> int:
            func = copy.deepcopy(ex.func)
            split_critical_edges(func)
            construct_ssa(func)
            run_mc_ssapre(func, ex.profile, sink_closest=sink_closest)
            liveness = compute_liveness(func, by_version=True)
            return sum(
                ex.profile.node(label)
                for label in func.blocks
                for name, _ in liveness.live_in.get(label, ())
                if name.startswith("%pre")
            )

        assert temp_pressure(True) < temp_pressure(False)
