"""Reference interpreter and profiler for the IR.

One interpreter serves four purposes:

1. **Semantics oracle** — the output trace + return value define program
   meaning; PRE transformations must preserve them exactly.
2. **Profiler** — node and edge frequencies for FDO, mirroring the paper's
   train-run instrumentation.
3. **Timer** — the weighted dynamic operation count (see
   :mod:`repro.ir.ops`) stands in for the paper's wall-clock seconds.
4. **Redundancy meter** — per lexical-expression dynamic evaluation
   counts, the exact quantity MC-SSAPRE's computational optimality theorem
   is about.

Works on SSA and non-SSA functions (phis are evaluated in parallel using
the incoming edge).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.ir import ops as op_tables
from repro.ir.function import Function
from repro.ir.instructions import (
    Assign,
    BinOp,
    CondJump,
    Jump,
    Load,
    Return,
    Store,
    UnaryOp,
)
from repro.ir.memory import initial_array
from repro.ir.values import Const, Operand, Var
from repro.profiles.profile import ExecutionProfile


class InterpreterError(Exception):
    """Raised on runtime errors (undefined variable, step overflow)."""


@dataclass
class RunResult:
    """Everything observed during one execution."""

    return_value: int | None
    output: list[int]
    profile: ExecutionProfile
    dynamic_cost: int
    expr_counts: dict[tuple, int] = field(default_factory=dict)
    steps: int = 0

    def observable(self) -> tuple:
        """The externally visible behaviour (for equivalence checks)."""
        return (self.return_value, tuple(self.output))


def run_function(
    func: Function,
    args: list[int] | None = None,
    max_steps: int = 2_000_000,
    *,
    probes=None,
) -> RunResult:
    """Execute *func* and collect profile + cost data.

    ``max_steps`` bounds the number of executed statements so runaway
    loops in generated programs fail fast instead of hanging the suite.

    With *probes* (a :class:`~repro.profiles.probes.placement.
    ProbePlacement` for this function's CFG) the run counts only the
    probed blocks and reconstructs the full ``node_freq`` by flow
    conservation afterwards — bit-identical to full counting, but
    without the per-block and per-edge counter traffic.  ``edge_freq``
    is then populated only when the probe set determines every edge;
    dynamic cost, expression counts and steps are computed by the
    execution itself and are unaffected.
    """
    args = args or []
    if len(args) != len(func.params):
        raise InterpreterError(
            f"{func.name} expects {len(func.params)} args, got {len(args)}"
        )

    env: dict[Var, int] = {}
    for param, value in zip(func.params, args):
        env[param] = value
        # Non-SSA functions reference parameters by base name.
        env[param.base] = value

    # Array memory: deterministic initial contents per array symbol,
    # mutated in place by stores.  Arrays are not SSA values.
    memory: dict[str, list[int]] = {
        name: initial_array(name, length)
        for name, length in func.arrays.items()
    }

    profile = ExecutionProfile()
    probe_counts: Counter[str] | None = None
    probe_set: frozenset[str] = frozenset()
    if probes is not None:
        probe_counts = Counter()
        probe_set = probes.probe_set
    output: list[int] = []
    expr_counts: Counter[tuple] = Counter()
    cost = 0
    steps = 0

    def read(operand: Operand) -> int:
        if isinstance(operand, Const):
            return operand.value
        try:
            return env[operand]
        except KeyError:
            raise InterpreterError(
                f"{func.name}: read of undefined variable {operand}"
            ) from None

    assert func.entry is not None
    label = func.entry
    prev_label: str | None = None
    return_value: int | None = None

    while True:
        block = func.blocks[label]
        # Hoisted step-budget check: the whole block (body + terminator)
        # executes or none of it does, so one comparison per block entry
        # raises on exactly the runs the per-statement check did.
        steps += len(block.body) + 1
        if steps > max_steps:
            raise InterpreterError(
                f"{func.name}: exceeded {max_steps} interpreted steps"
            )
        if probe_counts is None:
            profile.node_freq[label] += 1
            if prev_label is not None:
                profile.edge_freq[(prev_label, label)] += 1
        elif label in probe_set:
            probe_counts[label] += 1

        if block.phis:
            if prev_label is None:
                raise InterpreterError("entry block must not contain phis")
            values = [read(phi.args[prev_label]) for phi in block.phis]
            for phi, value in zip(block.phis, values):
                env[phi.target] = value
            cost += op_tables.PHI_COST * len(block.phis)

        for stmt in block.body:
            if isinstance(stmt, Assign):
                rhs = stmt.rhs
                if isinstance(rhs, BinOp):
                    info = op_tables.BINARY_OPS[rhs.op]
                    env[stmt.target] = info.func(read(rhs.left), read(rhs.right))
                    cost += info.cost
                    expr_counts[rhs.class_key()] += 1
                elif isinstance(rhs, UnaryOp):
                    info = op_tables.UNARY_OPS[rhs.op]
                    env[stmt.target] = info.func(read(rhs.operand))
                    cost += info.cost
                    expr_counts[rhs.class_key()] += 1
                elif isinstance(rhs, Load):
                    cells = memory[rhs.array]
                    index = read(rhs.index)
                    # Non-integer indices (an fdiv result) trap exactly
                    # like out-of-range ones — same check as compiled.
                    if not (isinstance(index, int) and 0 <= index < len(cells)):
                        raise InterpreterError(
                            f"{func.name}: load index {index} out of bounds "
                            f"for array {rhs.array!r} of length {len(cells)}"
                        )
                    env[stmt.target] = cells[index]
                    cost += op_tables.LOAD_COST
                    expr_counts[rhs.class_key()] += 1
                else:
                    env[stmt.target] = read(rhs)
                    cost += op_tables.COPY_COST
            elif isinstance(stmt, Store):
                cells = memory[stmt.array]
                index = read(stmt.index)
                if not (isinstance(index, int) and 0 <= index < len(cells)):
                    raise InterpreterError(
                        f"{func.name}: store index {index} out of bounds "
                        f"for array {stmt.array!r} of length {len(cells)}"
                    )
                cells[index] = read(stmt.value)
                cost += op_tables.STORE_COST
            else:  # Output
                output.append(read(stmt.value))
                cost += op_tables.OUTPUT_COST

        term = block.terminator
        if isinstance(term, Return):
            return_value = None if term.value is None else read(term.value)
            break
        if isinstance(term, Jump):
            prev_label, label = label, term.target
        elif isinstance(term, CondJump):
            cost += op_tables.BRANCH_COST
            taken = read(term.cond) != 0
            prev_label, label = label, (
                term.true_target if taken else term.false_target
            )
        else:  # pragma: no cover - verifier prevents this
            raise InterpreterError(f"unknown terminator {term!r}")

    if probe_counts is not None:
        # Local import: the probes package depends on this module.
        from repro.profiles.probes.reconstruct import reconstruct_profile

        profile = reconstruct_profile(probes, probe_counts, runs=1)

    return RunResult(
        return_value=return_value,
        output=output,
        profile=profile,
        dynamic_cost=cost,
        expr_counts=expr_counts,
        steps=steps,
    )
