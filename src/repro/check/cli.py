"""Command-line entry: ``python -m repro.check``.

Fuzzes ``--seeds N`` generated programs per shape through every compile
variant, runs the requested oracles, shrinks each failure with the
delta-debugging reducer and writes replayable artifacts plus a
``summary.json`` under ``--out`` (default ``results/check/``).

Examples::

    python -m repro.check --seeds 200 --oracle all --jobs 4
    python -m repro.check --seeds 50 --shape cfp --oracle safety --json
    python -m repro.check --replay results/check/seed7_cint_equiv_....json

Exit status: 0 when every oracle passed (or a replay reproduced its
failure), 1 otherwise.  The ``--json`` summary schema is documented in
``docs/CHECKING.md`` and pinned by ``tests/check/test_cli.py``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.check.corpus import (
    DEFAULT_OUT_DIR,
    SCHEMA_VERSION,
    replay_artifact,
    write_failure_artifact,
    write_summary,
)
from repro.check.driver import (
    DEFAULT_ENGINE,
    DEFAULT_INPUTS,
    ENGINES,
    SHAPES,
    SOLVER_CHOICES,
    failure_predicate,
    run_driver,
)
from repro.check.oracles import DEFAULT_MAX_STEPS, ORACLE_NAMES
from repro.check.reducer import reduce_function


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description=(
            "Differential-testing harness: fuzz generated programs "
            "through every PRE variant and check the paper's claims."
        ),
    )
    parser.add_argument(
        "--seeds", type=int, default=25, metavar="N",
        help="number of generator seeds per shape (default 25)",
    )
    parser.add_argument(
        "--seed-base", type=int, default=0, metavar="N",
        help="first seed (default 0); seeds run [N, N+seeds)",
    )
    parser.add_argument(
        "--shape", choices=(*SHAPES, "all"), default="all",
        help="program family to fuzz (default all)",
    )
    parser.add_argument(
        "--oracle", choices=(*ORACLE_NAMES, "all"), default="all",
        help="which claim to check (default all)",
    )
    parser.add_argument(
        "--inputs", type=int, default=DEFAULT_INPUTS, metavar="N",
        help=f"argument vectors per case (default {DEFAULT_INPUTS}; "
        "the first trains the profile)",
    )
    parser.add_argument(
        "--max-steps", type=int, default=DEFAULT_MAX_STEPS, metavar="N",
        help="interpreter step budget per run",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes; seeds are sharded and the summary is "
        "identical to a single-process run modulo timing (default 1)",
    )
    parser.add_argument(
        "--engine", choices=ENGINES, default=DEFAULT_ENGINE,
        help="execution back end for variant runs; the control always "
        f"uses the reference interpreter (default {DEFAULT_ENGINE})",
    )
    parser.add_argument(
        "--solver", choices=SOLVER_CHOICES, default="mincut",
        help="speculation solver for the mc-ssapre variants: the exact "
        "min-cut back end, the linear-time lospre DP, or auto (shape "
        "classifier picks per function).  The mc-ssapre-lospre twin "
        "always runs regardless (default mincut)",
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_OUT_DIR), metavar="DIR",
        help="artifact directory (default results/check)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the machine-readable summary instead of text",
    )
    parser.add_argument(
        "--no-reduce", action="store_true",
        help="skip delta-debugging reduction of failures",
    )
    parser.add_argument(
        "--replay", metavar="ARTIFACT",
        help="re-run one stored .json artifact instead of fuzzing",
    )
    return parser


def _replay(path: str, as_json: bool) -> int:
    reproduced, result = replay_artifact(path)
    if as_json:
        print(json.dumps({
            "schema": SCHEMA_VERSION,
            "artifact": path,
            "reproduced": reproduced,
            "failures": [f.to_dict() for f in result.failures],
        }, indent=2))
    else:
        verdict = "reproduced" if reproduced else "DID NOT reproduce"
        print(f"replay of {path}: {verdict} "
              f"({len(result.failures)} failure(s) observed)")
        for failure in result.failures:
            print(f"  {failure.oracle}/{failure.kind} [{failure.variant}] "
                  f"{failure.detail}")
    return 0 if reproduced else 1


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.replay:
        return _replay(args.replay, args.json)

    shapes = SHAPES if args.shape == "all" else (args.shape,)
    oracles = ORACLE_NAMES if args.oracle == "all" else (args.oracle,)

    def progress(result):
        if not args.json and not result.passed:
            print(f"FAIL seed={result.seed} shape={result.shape}: "
                  f"{len(result.failures)} failure(s)", file=sys.stderr)

    stats, failing = run_driver(
        args.seeds,
        shapes,
        oracles,
        seed_base=args.seed_base,
        n_inputs=args.inputs,
        max_steps=args.max_steps,
        on_case=progress,
        engine=args.engine,
        jobs=max(1, args.jobs),
        solver=args.solver,
    )

    artifacts: list[str] = []
    for result in failing:
        for failure in result.failures:
            reduction = None
            if not args.no_reduce and result.case is not None:
                predicate = failure_predicate(
                    result.seed, result.shape, failure,
                    n_inputs=args.inputs, max_steps=args.max_steps,
                )
                try:
                    reduction = reduce_function(
                        result.case.source, predicate
                    )
                except ValueError:
                    reduction = None  # flaky failure; keep the original
            artifacts.append(str(write_failure_artifact(
                args.out, result, failure, reduction
            )))

    summary = {
        "schema": SCHEMA_VERSION,
        "seeds": args.seeds,
        "seed_base": args.seed_base,
        "shapes": list(shapes),
        "oracles": list(oracles),
        "engine": args.engine,
        "jobs": max(1, args.jobs),
        "solver": args.solver,
        "passed": stats.failures == 0 and not stats.interrupted,
        "artifacts": artifacts,
        **stats.to_dict(),
    }
    write_summary(args.out, summary)

    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(f"checked {summary['cases']} cases "
              f"({args.seeds} seeds x {len(shapes)} shape(s), "
              f"oracles: {', '.join(oracles)}) "
              f"in {summary['wall_time_s']}s")
        for name, counts in summary["per_oracle"].items():
            print(f"  {name:<8} {counts['checks']:>7} checks  "
                  f"{counts['failures']:>3} failures")
        if summary["skipped"]:
            print(f"  skipped  {summary['skipped']} uncheckable case(s)")
        if summary["interrupted"]:
            print(f"INTERRUPTED ({stats.interrupt_reason}): partial "
                  "statistics over the completed shards only",
                  file=sys.stderr)
        if artifacts:
            print("artifacts:")
            for path in artifacts:
                print(f"  {path}")
        print("PASS" if summary["passed"] else "FAIL")
    return 0 if summary["passed"] else 1
