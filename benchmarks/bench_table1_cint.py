"""E1 — paper Table 1: CINT2006 costs and MC-SSAPRE speedups.

Regenerates the table rows (printed) and times one complete A/B/C
benchmark measurement as the unit of work.
"""

from conftest import emit

from repro.bench.tables import measure_workload
from repro.bench.workloads import load_workload


def test_table1_rows(cint_table, benchmark):
    workload = load_workload("mcf")
    benchmark.pedantic(
        measure_workload, args=(workload,), rounds=1, iterations=1
    )

    emit("Table 1 (CINT2006)", cint_table.render())

    # Paper shape: C is fastest in aggregate, with positive average
    # speedups over both A and B; per-row a little FDO slack is allowed
    # (train and ref inputs differ, as in the paper).
    assert cint_table.average_speedup_a > 0
    assert cint_table.average_speedup_b > 0
    for row in cint_table.rows:
        assert row.c_cost <= row.a_cost * 1.03, row.benchmark
