"""A curated running example in the spirit of the paper's Figures 2–8.

The scanned figures in the available copy of the paper are partially
garbled, so this module reconstructs a compact CFG that exhibits every
phenomenon the paper's narrative walks through, with frequencies chosen so
each interesting case arises and can be asserted exactly:

* expression ``a+b`` — a diamond where one arm computes it (twice: the
  second occurrence is dominated by the first and gets ``rg_excluded`` in
  step 2, like h2 at B9 / h5 at B18 in the paper) and the other arm does
  not, followed by one strictly-partially-redundant use.  Frequencies are
  chosen so **two minimum cuts tie** (value 10): cutting the source edge
  into the ⊥ operand (insert early, longer temporary lifetime) or the
  type 2 edge (compute in place, shortest lifetime).  The Reverse
  Labeling Procedure must pick the later cut — the paper resolves exactly
  this kind of tie in Section 3.1.8.

* expression ``c+d`` — a loop-invariant computation inside a while loop
  with a hot back edge (400 executions, like the paper's B18).  Hoisting
  to the preheader is *not* down-safe (the loop may run zero times), so
  safe SSAPRE leaves it alone; MC-SSAPRE's min cut inserts at the ⊥
  operand's predecessor (frequency 50) instead of paying 400 in place —
  the headline speculative win.

Frequencies are supplied as an explicit node profile (the paper annotates
its figures the same way) rather than measured, so tests can assert exact
cut values.  The CFG has no critical edges and the loop is left in while
form (tests run the pipeline with ``restructure=False`` to keep the
speculation visible).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.profiles.profile import ExecutionProfile

#: lexical keys of the two expressions the narrative follows
AB_KEY = ("add", ("var", "a"), ("var", "b"))
CD_KEY = ("add", ("var", "c"), ("var", "d"))
#: the composite extension: ``u + a`` where ``u`` is the loop-invariant
#: ``c+d`` — second-order redundancy only the iterative driver removes
UA_KEY = ("add", ("var", "u"), ("var", "a"))


@dataclass
class RunningExample:
    """The example function (non-SSA) and its node-frequency profile."""

    func: Function
    profile: ExecutionProfile
    expr_key: tuple = AB_KEY
    loop_key: tuple = CD_KEY


def build_running_example(composite: bool = False) -> RunningExample:
    """Construct the example CFG.

    With ``composite=True`` the hot loop body B9 additionally computes
    ``v = u + a`` and accumulates it — a rank-1 composite over the
    loop-invariant ``u = c+d``.  One-shot PRE cannot touch it (``u``'s
    SSA version is defined inside the loop), but once round 1 hoists
    ``c+d`` to a preheader temporary and the operand is rewritten
    through the reload copy, ``u + a`` becomes a loop-invariant class of
    its own and round 2 hoists it the same speculative way — the
    smallest end-to-end second-order win.

    Shape (node frequencies in parentheses)::

        B1 (50) ─┬─> B2 (40)  x = a+b ; x2 = a+b   # x2 rg_excluded
                 └─> B3 (10)                        # ⊥ path
        B2,B3 ──> B4 (50)
        B4 ─┬─> B5 (10)  y = a+b                   # SPR occurrence
            └─> B6 (40)
        B5,B6 ──> B7 (50)  preheader
        B7 ──> B8 (450)  while header
        B8 ─┬─> B9 (400)  u = c+d  (invariant)     # hot loop body
            └─> B10 (50)  ret
    """
    b = FunctionBuilder("running_example", params=["a", "b", "p", "q"])
    b.block("B1")
    b.copy("y", 0)  # defined on every path; B5 may overwrite
    b.assign("c", "add", "a", 1)
    b.assign("d", "add", "b", 1)
    b.copy("acc", 0)
    b.branch("p", "B2", "B3")
    b.block("B2")
    b.assign("x", "add", "a", "b")
    b.assign("x2", "add", "a", "b")  # dominated by x: rg_excluded
    b.output("x2")
    b.jump("B4")
    b.block("B3")
    b.copy("x", 0)
    b.jump("B4")
    b.block("B4")
    b.branch("q", "B6", "B5")
    b.block("B5")
    b.assign("y", "add", "a", "b")  # strictly partially redundant
    b.jump("B7")
    b.block("B6")
    b.jump("B7")
    b.block("B7")
    b.copy("i", 0)
    b.jump("B8")
    b.block("B8")
    b.assign("t", "lt", "i", "q")
    b.branch("t", "B9", "B10")
    b.block("B9")
    b.assign("u", "add", "c", "d")  # loop-invariant occurrence
    b.assign("acc", "add", "acc", "u")
    if composite:
        b.assign("v", "add", "u", "a")  # rank-1 composite over u
        b.assign("acc", "add", "acc", "v")
    b.assign("i", "add", "i", 1)
    b.jump("B8")
    b.block("B10")
    b.assign("r", "add", "x", "y")
    b.assign("r", "add", "r", "acc")
    b.ret("r")

    func = b.build()
    profile = ExecutionProfile(
        node_freq={
            "B1": 50,
            "B2": 40,
            "B3": 10,
            "B4": 50,
            "B5": 10,
            "B6": 40,
            "B7": 50,
            "B8": 450,
            "B9": 400,
            "B10": 50,
        }
    )
    return RunningExample(func=func, profile=profile)
