"""Execution-profile containers.

MC-SSAPRE needs only **node** (basic-block) frequencies; MC-PRE needs
**edge** frequencies (paper Sections 1 and 4).  :class:`ExecutionProfile`
stores both so the two algorithms can be driven from one profiling run,
and so tests can check that MC-SSAPRE really never touches the edge map.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ir.function import Function


@dataclass
class ExecutionProfile:
    """Node and edge frequencies gathered from (or synthesised for) a run.

    Both maps are :class:`collections.Counter` instances (missing keys
    read as 0, increments need no ``get`` dance, and
    :meth:`Counter.update` adds counts — the operation :meth:`merge`
    builds on).  Plain dicts passed to the constructor are converted.
    """

    node_freq: Counter[str] = field(default_factory=Counter)
    edge_freq: Counter[tuple[str, str]] = field(default_factory=Counter)

    def __post_init__(self) -> None:
        if not isinstance(self.node_freq, Counter):
            self.node_freq = Counter(self.node_freq)
        if not isinstance(self.edge_freq, Counter):
            self.edge_freq = Counter(self.edge_freq)

    def node(self, label: str) -> int:
        return self.node_freq.get(label, 0)

    def edge(self, src: str, dst: str) -> int:
        return self.edge_freq.get((src, dst), 0)

    def merge(self, other: "ExecutionProfile") -> "ExecutionProfile":
        """Accumulate *other*'s counts into this profile (returns self).

        The reduction step of the process-parallel drivers: per-shard
        profiles merge into one suite-wide profile without caring which
        labels the shards have in common.
        """
        self.node_freq.update(other.node_freq)
        self.edge_freq.update(other.edge_freq)
        return self

    def nodes_only(self) -> "ExecutionProfile":
        """A copy with the edge map dropped.

        The MC-SSAPRE driver is handed this restricted view in tests to
        prove the algorithm needs no edge frequencies.
        """
        return ExecutionProfile(node_freq=dict(self.node_freq), edge_freq={})

    @classmethod
    def unit(cls, labels: "Iterable[str] | Function") -> "ExecutionProfile":
        """A profile in which every block has frequency 1.

        Feeding this to MC-SSAPRE turns its objective from dynamic
        evaluations into *static occurrences*: every insertion and every
        in-place computation costs exactly one instruction, so the min
        cut minimises code size instead of speed — the use of the
        framework the paper's Section 6 points at (after Scholz et al.).
        """
        from repro.ir.function import Function

        if isinstance(labels, Function):
            labels = labels.blocks.keys()
        return cls(node_freq={label: 1 for label in labels})

    def scaled(self, factor: float) -> "ExecutionProfile":
        """A copy with every count scaled (and floored at >= 0 ints)."""
        return ExecutionProfile(
            node_freq={k: max(0, int(v * factor)) for k, v in self.node_freq.items()},
            edge_freq={k: max(0, int(v * factor)) for k, v in self.edge_freq.items()},
        )

    def check_flow_conservation(self, entry: str) -> list[str]:
        """Return labels whose in-edge frequencies do not sum to the node's.

        Entry and exit blocks are exempt (they exchange flow with the
        outside world).  An empty result means the edge profile is
        consistent with the node profile — a property the interpreter's
        output always has, and synthetic profiles should preserve.
        """
        violations = []
        incoming: Counter[str] = Counter()
        for (_, dst), count in self.edge_freq.items():
            incoming[dst] += count
        for label, freq in self.node_freq.items():
            if label != entry and incoming[label] != freq:
                violations.append(label)
        return violations
