"""Tests for the `python -m repro.bench` command-line interface."""

import pytest

from repro.bench.cli import main


def run_cli(capsys, *argv) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestCLI:
    def test_table1_subset(self, capsys):
        out = run_cli(capsys, "table1", "--benchmarks", "mcf,sjeng")
        assert "Table 1" in out
        assert "mcf" in out and "sjeng" in out
        assert "Average" in out

    def test_fig9_subset(self, capsys):
        out = run_cli(capsys, "fig9", "--benchmarks", "mcf")
        assert "Figure 9" in out
        assert "normalised" in out

    def test_fig11_subset(self, capsys):
        out = run_cli(capsys, "fig11", "--benchmarks", "mcf,milc")
        assert "EFG size distribution" in out
        assert "min size: 4" in out

    def test_sec4_subset(self, capsys):
        out = run_cli(capsys, "sec4", "--benchmarks", "sjeng")
        assert "flow-network sizes" in out
        assert "sjeng" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1", "--benchmarks", "doom3"])

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["table7"])

    def test_passes_artifact(self, capsys):
        out = run_cli(capsys, "passes")
        assert "PassReport: bwaves [mc-ssapre]" in out
        assert "construct-ssa" in out
        assert "clone" in out and "deepcopy" in out
        assert "cache by analysis" in out
        # The iterative twin's per-round statistics.
        assert "PassReport: bwaves [mc-ssapre-iter]" in out
        assert "rounds: r1:" in out

    def test_passes_artifact_json(self, capsys):
        import json

        out = run_cli(capsys, "passes", "--json", "--benchmarks", "bwaves")
        data = json.loads(out)
        assert data[0]["benchmark"] == "bwaves"
        report = next(
            r for r in data[0]["reports"] if r["variant"] == "ssapre"
        )
        names = [p["pass"] for p in report["passes"]]
        assert names == ["construct-ssa", "ssapre", "destruct-ssa"]
        # The demonstrated cache reuse: the PRE stage recomputes nothing.
        pre = report["passes"][1]
        assert pre["cache_hits"] >= 3 and pre["cache_misses"] == 0

    @pytest.mark.parametrize("solver", ["mincut", "lospre", "auto"])
    def test_passes_artifact_solver_flag(self, capsys, solver):
        import json

        out = run_cli(
            capsys, "passes", "--json", "--benchmarks", "bwaves",
            "--solver", solver,
        )
        data = json.loads(out)
        report = next(
            r for r in data[0]["reports"] if r["variant"] == "mc-ssapre"
        )
        pre = next(p for p in report["passes"] if p["pass"] == "mc-ssapre")
        assert pre["payload"]["solver_requested"] == solver
        # "auto" resolves per function; forced names are used verbatim.
        expected = {"mincut", "lospre"} if solver == "auto" else {solver}
        assert pre["payload"]["solver"] in expected

    def test_unknown_solver_rejected(self):
        with pytest.raises(SystemExit):
            main(["passes", "--solver", "simplex"])

    def test_seed_offset_changes_the_table(self, capsys):
        base = run_cli(capsys, "table1", "--benchmarks", "mcf")
        same = run_cli(capsys, "table1", "--benchmarks", "mcf", "--seed", "0")
        other = run_cli(
            capsys, "table1", "--benchmarks", "mcf", "--seed", "5"
        )
        assert base == same  # offset 0 is the canonical suite
        assert base != other  # a different deterministic program instance


class TestSeedOffset:
    def test_spec_and_args_shift_deterministically(self):
        from repro.bench.workloads import load_workload, spec_for

        assert spec_for("mcf", 5).seed == spec_for("mcf").seed + 5
        a = load_workload("gcc", seed_offset=3)
        b = load_workload("gcc", seed_offset=3)
        assert a.train_args == b.train_args
        assert a.ref_args == b.ref_args
        assert str(a.program.func) == str(b.program.func)
        c = load_workload("gcc")
        assert str(a.program.func) != str(c.program.func)
