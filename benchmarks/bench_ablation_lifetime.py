"""A1 (ablation) — lifetime optimality: reverse labeling vs source-side cut.

Disabling the Reverse Labeling Procedure (taking the min cut nearest the
source instead) must keep the computational optimum but lengthen the PRE
temporaries' live ranges and their profile-weighted pressure.
"""

from conftest import SUITE_SUBSET, emit

from repro.bench.ablations import lifetime_ablation, render_lifetime
from repro.bench.workloads import load_workload


def test_lifetime_ablation(benchmark):
    benchmark.pedantic(
        lifetime_ablation, args=(load_workload("mcf"),), rounds=1, iterations=1
    )

    results = [lifetime_ablation(load_workload(name)) for name in SUITE_SUBSET]
    emit("Ablation A1 (lower is better)", render_lifetime(results))

    late_ranges = early_ranges = late_pressure = early_pressure = 0
    for r in results:
        # Computational optimality is unaffected by the tie-break side.
        assert r.late.cost == r.early.cost, r.name
        # Theorem 9: the later cut never lengthens temp live ranges.
        assert r.late.live_range <= r.early.live_range, r.name
        assert r.late.pressure <= r.early.pressure, r.name
        late_ranges += r.late.live_range
        early_ranges += r.early.live_range
        late_pressure += r.late.pressure
        early_pressure += r.early.pressure

    # Across a whole suite the reverse labeling should win strictly.
    assert late_ranges < early_ranges
    assert late_pressure < early_pressure
