"""MC-SSAPRE step 3 — sparse data flow on the SSA graph.

Two attributes are solved directly on the FRG with the one-pass
propagation style of [14], each linear in the size of the graph:

* **Full availability** (forward, greatest fixpoint).  A Φ's value is
  fully available iff every operand carries the value: a ⊥ operand makes
  it unavailable; an operand whose path crosses a real occurrence
  (``has_real_use``) or that is defined by a real occurrence carries it;
  an operand defined by another Φ carries it iff that Φ is fully
  available.  Insertions where the value is fully available would be
  redundant, so such Φs are excluded from the flow network.

* **Partial anticipability** (backward, least fixpoint).  A Φ's value is
  partially anticipated iff some use of its version is a real occurrence,
  or is an operand of a partially anticipated Φ.  Insertions where the
  value is not partially anticipated would be useless.

Note these are *version-aware* (they see values surviving a renaming
variable phi), which the lexical bit-vector oracle cannot; the property
tests check the sparse results against path enumeration on acyclic CFGs
and against the (one-sided) lexical oracle everywhere.
"""

from __future__ import annotations

from collections import deque

from repro.core.ssapre.frg import FRG, PhiNode


def compute_full_availability(frg: FRG) -> None:
    """Set ``fully_avail`` on every Φ (greatest fixpoint)."""
    for phi in frg.phis:
        phi.fully_avail = True

    # Users of each phi's value via operands without a crossing real use.
    dependents: dict[int, list[PhiNode]] = {}
    for phi in frg.phis:
        for operand in phi.operands:
            if (
                isinstance(operand.def_node, PhiNode)
                and not operand.has_real_use
            ):
                dependents.setdefault(id(operand.def_node), []).append(phi)

    worklist: deque[PhiNode] = deque()

    def refute(phi: PhiNode) -> None:
        if phi.fully_avail:
            phi.fully_avail = False
            worklist.append(phi)

    for phi in frg.phis:
        if any(op.is_bottom for op in phi.operands):
            refute(phi)
    while worklist:
        failed = worklist.popleft()
        for user in dependents.get(id(failed), ()):
            # The operand carries the value only via `failed`, which does
            # not have it on all paths.
            refute(user)


def compute_partial_anticipability(frg: FRG) -> None:
    """Set ``part_anticipated`` on every Φ (least fixpoint).

    An rg_excluded occurrence still anticipates the value — it is a real
    computation point; exclusion only means it cannot be a min-cut sink.
    """
    for phi in frg.phis:
        phi.part_anticipated = False

    # def phi -> phis using it as an operand (any crossing status: even if
    # a real occurrence sits on the path, the *value* is anticipated).
    users_of: dict[int, list[PhiNode]] = {}
    for phi in frg.phis:
        for operand in phi.operands:
            if isinstance(operand.def_node, PhiNode):
                users_of.setdefault(id(operand.def_node), []).append(phi)

    worklist: deque[PhiNode] = deque()

    def assert_pant(phi: PhiNode) -> None:
        if not phi.part_anticipated:
            phi.part_anticipated = True
            worklist.append(phi)

    for occ in frg.real_occs:
        if isinstance(occ.def_node, PhiNode):
            assert_pant(occ.def_node)
    for phi in frg.phis:
        for operand in phi.operands:
            if isinstance(operand.def_node, PhiNode) and operand.has_real_use:
                # A real occurrence on the path from def to this operand
                # uses the def's value.
                assert_pant(operand.def_node)
    while worklist:
        anticipated = worklist.popleft()
        for user_list_phi in _defs_feeding(frg, anticipated):
            assert_pant(user_list_phi)


def _defs_feeding(frg: FRG, phi: PhiNode):
    """Φs whose value flows into *phi* as an operand (backward step)."""
    for operand in phi.operands:
        if isinstance(operand.def_node, PhiNode):
            yield operand.def_node


def solve_step3(frg: FRG) -> None:
    """Run both analyses (MC-SSAPRE step 3)."""
    compute_full_availability(frg)
    compute_partial_anticipability(frg)
