"""Recover full execution profiles from sparse probe counts.

The inverse of placement: given the probe counters observed by a sparse
run (and the number of runs they aggregate), solve the flow-conservation
system and emit an :class:`~repro.profiles.profile.ExecutionProfile`
whose ``node_freq`` is *exactly* what full counting would have recorded
— bit-identical, not approximate.  The ``probes`` differential oracle in
``repro.check`` holds this to account on every fuzzed seed.

Edge frequencies are a bonus: they are emitted only when the probe
measurements pin down *every* real edge flow (all-or-nothing, so a
consumer never mixes exact and missing edges); otherwise ``edge_freq``
is left empty.  Node frequencies — the only profile input MC-SSAPRE's
speculation solver reads — are always complete.

Failures are loud: an inconsistent or under-determined system raises
:class:`~repro.profiles.probes.flowsys.ReconstructionError` rather than
returning a plausible-but-wrong profile.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping

from repro.profiles.probes.placement import ProbePlacement
from repro.profiles.profile import ExecutionProfile


def reconstruct_profile(
    placement: ProbePlacement,
    probe_counts: Mapping[str, int],
    runs: int = 1,
) -> ExecutionProfile:
    """Exact profile for *runs* executions observed through *placement*.

    *probe_counts* maps probed block labels to their summed execution
    counts; labels absent from the mapping count as 0.  Zero-frequency
    entries are dropped from the result so the returned counters compare
    equal — as plain dicts, not just as Counters — to full counting,
    which never records a zero.
    """
    if runs < 0:
        raise ValueError(f"runs must be non-negative, got {runs}")
    unknown = [v for v in probe_counts if v not in placement.probe_set]
    if unknown:
        raise ValueError(
            f"counts supplied for unprobed blocks {sorted(unknown)!r}"
        )
    node_freq, edge_freq = placement.system().solve(
        placement.probes, probe_counts, runs
    )
    profile = ExecutionProfile(
        node_freq=Counter(
            {label: n for label, n in node_freq.items() if n}
        ),
        edge_freq=Counter(
            {edge: n for edge, n in (edge_freq or {}).items() if n}
        ),
    )
    return profile
