"""The seeded fuzz loop: generate → compile every variant → run oracles.

One *case* is one generated program (:mod:`repro.bench.generator`) in
one of four shapes — ``cint`` (branch-heavy, shallow loops, integer
ops), ``cfp`` (loop-heavy, FP-flavoured, invariant-dense),
``composite`` (nested expression chains with per-site intermediates,
the second-order-redundancy family the iterative worklist exists for)
or ``mem`` (array loads/stores with aliasing stores and may-trap load
classes, the family that exercises store kills and load speculation) —
with trapping operators enabled, so speculation safety is genuinely at
stake.  The driver compiles all variants through the single
:func:`repro.passes.compiler.compile` entry point with verification on,
classifies anything that goes wrong before the oracles even run
(``crash`` vs ``verifier-reject``, attributed to the failing pass via the
:class:`~repro.passes.manager.PassReport`), executes every compiled
function on shared inputs, and hands the assembled
:class:`~repro.check.oracles.CheckCase` to the requested oracles.

Everything is deterministic in ``(seed, shape)``: the program, the
argument vectors, and therefore every compile and run.  That is what lets
a stored failure replay years later from two integers and a string.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import partial

from repro.bench.generator import (
    ProgramSpec,
    generate_program,
    perturbed_args,
    random_args,
)
from repro.core.worklist import DEFAULT_ITERATIVE_ROUNDS
from repro.ir.function import Function
from repro.ir.verifier import VerificationError, verify_function
from repro.parallel import ParallelMapError, parallel_map
from repro.passes.compiler import VARIANTS, compile as compile_func
from repro.pipeline import prepare
from repro.profiles.interp import InterpreterError, run_function
from repro.check.oracles import (
    DEFAULT_MAX_STEPS,
    ORACLE_NAMES,
    ORACLES,
    CheckCase,
    OracleFailure,
    OracleReport,
    VariantFn,
)

#: The program families the harness fuzzes: the paper's two (Tables 1
#: and 2), the composite-chain family for second-order redundancy, and
#: the memory family (array loads/stores under the conservative alias
#: model, with aliasing stores and may-trap load classes).
SHAPES = ("cint", "cfp", "composite", "mem")

#: Round budget of the always-fuzzed iterative twin variants, and the
#: names they are recorded under in ``CheckCase.compiled``.  The twins
#: are policed by the equivalence and safety oracles on every case (the
#: per-key optimality oracles reference the one-shot drivers by name —
#: iterative operand rewriting legitimately re-keys expressions).
ITERATIVE_ROUNDS = DEFAULT_ITERATIVE_ROUNDS
ITERATIVE_VARIANTS = {"ssapre-iter": "ssapre", "mc-ssapre-iter": "mc-ssapre"}

#: Always-compiled differential twin: MC-SSAPRE under the linear-time
#: lospre solver (one-shot).  Named in
#: :data:`repro.check.oracles._OPTIMAL_PEERS`, so the optimality oracle
#: requires its per-expression dynamic counts to equal the min-cut
#: compile's *exactly* on every fuzz seed — the solver exactness
#: contract (refused classes fall back to the min cut inside the driver,
#: so the twin exists on every case).
SOLVER_TWIN = "mc-ssapre-lospre"

#: Solver knobs ``build_case`` accepts for the main mc-ssapre compiles.
SOLVER_CHOICES = ("mincut", "lospre", "auto")

#: Inputs per case: index 0 trains the profile, the rest are ref-like.
DEFAULT_INPUTS = 3

#: Execution back ends for the *variant* runs.  The control always runs
#: on the tree-walking reference interpreter (it is the semantics
#: oracle), so fuzzing with the default "compiled" engine differentially
#: tests the compiled back end on every case for free.
ENGINES = ("compiled", "reference")
DEFAULT_ENGINE = "compiled"


def spec_for_shape(shape: str, seed: int) -> ProgramSpec:
    """The generator spec of one fuzz case.

    Unlike the benchmark suite specs (:mod:`repro.bench.workloads`),
    these keep programs small enough that hundreds of cases compile and
    run in seconds, and they turn the trapping knobs *up*: an explicit
    trapping density plus trapping hot expressions, so partially
    redundant ``div``/``mod`` — the expressions the safety guarantee is
    about — occur in nearly every program.
    """
    if shape == "cint":
        return ProgramSpec(
            name=f"cint{seed}",
            seed=seed,
            params=3,
            locals_count=6,
            region_length=5,
            max_depth=2,
            branch_weight=0.38,
            loop_weight=0.16,
            loop_mask_bits=4,
            loop_base=3,
            hot_exprs=5,
            hot_prob=0.45,
            trapping_density=0.08,
            trapping_hot_prob=0.25,
            fp_flavor=False,
            stable_fraction=0.5,
        )
    if shape == "cfp":
        return ProgramSpec(
            name=f"cfp{seed}",
            seed=seed,
            params=3,
            locals_count=6,
            region_length=4,
            max_depth=2,
            branch_weight=0.14,
            loop_weight=0.34,
            loop_mask_bits=5,
            loop_base=5,
            hot_exprs=6,
            hot_prob=0.5,
            trapping_density=0.05,
            trapping_hot_prob=0.20,
            fp_flavor=True,
            stable_fraction=0.65,
        )
    if shape == "composite":
        return ProgramSpec(
            name=f"composite{seed}",
            seed=seed,
            params=3,
            locals_count=6,
            region_length=5,
            max_depth=2,
            branch_weight=0.30,
            loop_weight=0.20,
            loop_mask_bits=4,
            loop_base=3,
            hot_exprs=4,
            hot_prob=0.30,
            trapping_density=0.06,
            trapping_hot_prob=0.20,
            composite_exprs=3,
            composite_depth=3,
            composite_prob=0.35,
            fp_flavor=False,
            stable_fraction=0.6,
        )
    if shape == "mem":
        return ProgramSpec(
            name=f"mem{seed}",
            seed=seed,
            params=3,
            locals_count=6,
            region_length=5,
            max_depth=2,
            branch_weight=0.30,
            loop_weight=0.22,
            loop_mask_bits=4,
            loop_base=3,
            hot_exprs=3,
            hot_prob=0.35,
            trapping_density=0.04,
            trapping_hot_prob=0.30,
            fp_flavor=False,
            stable_fraction=0.6,
            arrays=2,
            mem_prob=0.35,
            store_density=0.30,
            alias_density=0.5,
            hot_loads=3,
        )
    raise ValueError(f"unknown shape {shape!r}; expected one of {SHAPES}")


def case_inputs(spec: ProgramSpec, n_inputs: int = DEFAULT_INPUTS) -> list[list[int]]:
    """Deterministic argument vectors; index 0 is the training vector."""
    train = random_args(spec, seed=101)
    inputs = [train]
    for i in range(1, n_inputs):
        if i % 2:  # a correlated "ref" input (profile roughly transfers)
            inputs.append(perturbed_args(spec, train, seed=200 + i))
        else:  # an independent input (profile may mispredict)
            inputs.append(random_args(spec, seed=300 + i))
    return inputs


@dataclass
class CaseResult:
    """Everything one ``(seed, shape)`` case produced."""

    seed: int
    shape: str
    case: CheckCase | None  # None when the control itself failed
    compile_failures: list[OracleFailure] = field(default_factory=list)
    reports: list[OracleReport] = field(default_factory=list)
    skipped: str | None = None  # reason the case was not checkable

    @property
    def failures(self) -> list[OracleFailure]:
        out = list(self.compile_failures)
        for report in self.reports:
            out.extend(report.failures)
        return out

    @property
    def passed(self) -> bool:
        return not self.failures


def build_case(
    seed: int,
    shape: str,
    *,
    spec: ProgramSpec | None = None,
    source: Function | None = None,
    n_inputs: int = DEFAULT_INPUTS,
    max_steps: int = DEFAULT_MAX_STEPS,
    variants: tuple[str, ...] = VARIANTS,
    extra_variants: dict[str, VariantFn] | None = None,
    engine: str = DEFAULT_ENGINE,
    iterative: bool = True,
    solver: str = "mincut",
) -> CaseResult:
    """Generate, prepare, profile and compile one case.

    ``iterative=True`` (default) additionally compiles the iterative
    worklist twins of the SSA-based drivers
    (:data:`ITERATIVE_VARIANTS`), so every fuzz case differentially
    tests the multi-round engine against the reference interpreter and
    the safety oracle for free.

    ``solver`` forces the speculation solver of the *main* mc-ssapre
    compiles (one-shot and iterative).  Independent of it, whenever
    "mc-ssapre" is among the variants the case also compiles the
    :data:`SOLVER_TWIN` — mc-ssapre under ``solver="lospre"`` — which
    the optimality oracle exact-compares against the main compile.

    ``extra_variants`` maps a name to a callable ``(prepared_clone,
    profile) -> Function`` — the hook the reducer tests use to inject a
    deliberately broken transformation, and the way an out-of-tree pass
    can ride the whole harness.  The returned :class:`CaseResult` has
    ``case=None`` (with ``skipped`` set) when the *control* could not be
    built or run — that is a generator/interpreter budget problem, not an
    optimiser bug, so it is reported as a skip rather than a failure.

    ``engine`` selects the execution back end for the variant runs; the
    control always runs on the reference interpreter, so the default
    "compiled" engine is differentially tested on every case.
    """
    from repro.pipeline import make_runner

    execute = make_runner(engine)
    result = CaseResult(seed=seed, shape=shape, case=None)
    spec = spec or spec_for_shape(shape, seed)
    try:
        source = source if source is not None else generate_program(spec).func
        prepared = prepare(source)
        inputs = case_inputs(spec, n_inputs)
        control_runs = [
            run_function(prepared, args, max_steps=max_steps) for args in inputs
        ]
    except (InterpreterError, VerificationError, ValueError) as exc:
        result.skipped = f"control failed: {exc!r}"
        return result

    profile = control_runs[0].profile
    # Every fuzzed profile is flow-conservation checked automatically
    # (ISSUE satellite of docs/PROFILING.md): the interpreter's counting
    # must satisfy Kirchhoff's law at every non-entry block.  Profiles
    # without edge data (reconstructed ones that left edges
    # under-determined) have nothing to cross-check.
    assert prepared.entry is not None
    for i, run in enumerate(control_runs):
        if not run.profile.edge_freq:
            continue
        violations = run.profile.check_flow_conservation(prepared.entry)
        if violations:
            result.compile_failures.append(
                OracleFailure(
                    "profile", "control", "flow-violation",
                    f"control run on input #{i} {inputs[i]} breaks flow "
                    f"conservation at {violations!r}",
                )
            )
    if solver not in SOLVER_CHOICES:
        raise ValueError(
            f"unknown solver {solver!r}; expected one of {SOLVER_CHOICES}"
        )

    def _solver_for(base: str) -> str:
        return solver if base == "mc-ssapre" else "mincut"

    compiled: dict[str, Function] = {}
    caches: dict[str, object] = {}
    to_compile: list[tuple[str, str, int, str]] = [
        (variant, variant, 1, _solver_for(variant)) for variant in variants
    ]
    if iterative:
        to_compile.extend(
            (name, base, ITERATIVE_ROUNDS, _solver_for(base))
            for name, base in ITERATIVE_VARIANTS.items()
            if base in variants
        )
    if "mc-ssapre" in variants:
        to_compile.append((SOLVER_TWIN, "mc-ssapre", 1, "lospre"))
    for name, base, rounds, base_solver in to_compile:
        try:
            out = compile_func(
                prepared, base, profile, validate=True, rounds=rounds,
                solver=base_solver,
            )
            verify_function(out.func)
            compiled[name] = out.func
            caches[name] = out.cache
        except VerificationError as exc:
            result.compile_failures.append(
                OracleFailure("compile", name, "verifier-reject", repr(exc))
            )
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            result.compile_failures.append(
                OracleFailure("compile", name, "crash", repr(exc))
            )
    for name, fn in (extra_variants or {}).items():
        try:
            out_func = fn(prepared.clone(), profile)
            verify_function(out_func)
            compiled[name] = out_func
            from repro.passes.cache import AnalysisCache

            caches[name] = AnalysisCache(out_func)
        except VerificationError as exc:
            result.compile_failures.append(
                OracleFailure("compile", name, "verifier-reject", repr(exc))
            )
        except Exception as exc:  # noqa: BLE001
            result.compile_failures.append(
                OracleFailure("compile", name, "crash", repr(exc))
            )

    variant_runs: dict[str, list] = {}
    for name, func in compiled.items():
        runs: list = []
        cache = caches.get(name)
        for i, args in enumerate(inputs):
            try:
                runs.append(execute(func, args, max_steps, cache=cache))
            except Exception as exc:  # noqa: BLE001
                runs.append(None)
                result.compile_failures.append(
                    OracleFailure(
                        "compile", name, "crash",
                        f"run on input #{i} {args}: {exc!r}",
                    )
                )
        variant_runs[name] = runs
        assert func.entry is not None
        for i, run in enumerate(runs):
            if run is None or not run.profile.edge_freq:
                continue
            violations = run.profile.check_flow_conservation(func.entry)
            if violations:
                result.compile_failures.append(
                    OracleFailure(
                        "profile", name, "flow-violation",
                        f"run on input #{i} {inputs[i]} breaks flow "
                        f"conservation at {violations!r}",
                    )
                )

    result.case = CheckCase(
        seed=seed,
        shape=shape,
        spec=spec,
        source=source,
        prepared=prepared,
        inputs=inputs,
        profile=profile,
        control_runs=control_runs,
        compiled=compiled,
        variant_runs=variant_runs,
        max_steps=max_steps,
    )
    return result


def check_case(
    result: CaseResult, oracles: tuple[str, ...] = ORACLE_NAMES
) -> CaseResult:
    """Run the requested oracles over an already-built case, in place."""
    if result.case is None:
        return result
    for name in oracles:
        oracle = ORACLES.get(name)
        if oracle is None:
            raise ValueError(f"unknown oracle {name!r}; known: {ORACLE_NAMES}")
        result.reports.append(oracle(result.case))
    return result


def run_case(
    seed: int,
    shape: str,
    *,
    oracles: tuple[str, ...] = ORACLE_NAMES,
    **build_kwargs,
) -> CaseResult:
    """``build_case`` + ``check_case`` in one deterministic call.

    This is the replay entry point: a stored failure is reproduced by
    calling this with its recorded seed/shape (and, for injected-variant
    findings, the same ``extra_variants``).
    """
    return check_case(build_case(seed, shape, **build_kwargs), oracles)


def failure_predicate(
    seed: int,
    shape: str,
    failure: OracleFailure,
    *,
    n_inputs: int = DEFAULT_INPUTS,
    max_steps: int = DEFAULT_MAX_STEPS,
    extra_variants: dict[str, VariantFn] | None = None,
):
    """A reducer predicate: does this exact failure reproduce on a
    candidate source function?

    "Exact" means the same ``(oracle, kind, variant)`` triple — the
    detail string legitimately changes as the program shrinks.  The
    candidate replaces the generated program but keeps the case's seed,
    shape and therefore argument vectors, so a reduced artifact replays
    through the very pipeline that caught the original.
    """
    # "compile" and "profile" findings are recorded by build_case itself,
    # not by a named oracle, so replay runs with no oracle list.
    oracles = (
        () if failure.oracle in ("compile", "profile") else (failure.oracle,)
    )

    def predicate(func: Function) -> bool:
        result = run_case(
            seed,
            shape,
            oracles=oracles,
            source=func,
            n_inputs=n_inputs,
            max_steps=max_steps,
            extra_variants=extra_variants,
        )
        return any(
            f.oracle == failure.oracle
            and f.kind == failure.kind
            and f.variant == failure.variant
            for f in result.failures
        )

    return predicate


@dataclass
class DriverStats:
    """Aggregate statistics over one fuzz run."""

    cases: int = 0
    skipped: int = 0
    #: oracle name -> [checks, failures] (includes the synthetic
    #: "compile" oracle for pre-oracle crashes and verifier rejects).
    per_oracle: dict[str, list[int]] = field(default_factory=dict)
    #: failure kind -> count (crash / verifier-reject / divergence / ...).
    by_kind: dict[str, int] = field(default_factory=dict)
    wall_time_s: float = 0.0
    #: True when the run was cut short (Ctrl-C, dead worker process) and
    #: these statistics therefore cover only the completed shards.
    interrupted: bool = False
    #: What cut the run short (exception class name), when interrupted.
    interrupt_reason: str | None = None

    def record(self, result: CaseResult) -> None:
        self.cases += 1
        if result.skipped is not None:
            self.skipped += 1
            return
        compile_stats = self.per_oracle.setdefault("compile", [0, 0])
        compile_stats[0] += len(result.case.compiled) if result.case else 0
        # Pre-oracle findings classify under their own bucket: "compile"
        # (a variant failed to build or run) or "profile" (a fuzzed
        # profile broke flow conservation).
        for failure in result.compile_failures:
            bucket = self.per_oracle.setdefault(failure.oracle, [0, 0])
            bucket[1] += 1
        for report in result.reports:
            stats = self.per_oracle.setdefault(report.name, [0, 0])
            stats[0] += report.checks
            stats[1] += len(report.failures)
        for failure in result.failures:
            self.by_kind[failure.kind] = self.by_kind.get(failure.kind, 0) + 1

    def merge(self, other: "DriverStats") -> "DriverStats":
        """Fold another shard's statistics into this one (returns self).

        Addition is commutative and :meth:`to_dict` sorts its maps, so
        the merged summary is identical no matter in which order the
        parallel shards complete.  Wall time is deliberately *not*
        summed: the caller owns the clock for the whole run.
        """
        self.cases += other.cases
        self.skipped += other.skipped
        for name, (checks, failures) in other.per_oracle.items():
            stats = self.per_oracle.setdefault(name, [0, 0])
            stats[0] += checks
            stats[1] += failures
        for kind, count in other.by_kind.items():
            self.by_kind[kind] = self.by_kind.get(kind, 0) + count
        self.interrupted = self.interrupted or other.interrupted
        if self.interrupt_reason is None:
            self.interrupt_reason = other.interrupt_reason
        return self

    @property
    def failures(self) -> int:
        return sum(f for _, f in self.per_oracle.values())

    def to_dict(self) -> dict:
        return {
            "cases": self.cases,
            "skipped": self.skipped,
            "failures": self.failures,
            "per_oracle": {
                name: {"checks": checks, "failures": fails}
                for name, (checks, fails) in sorted(self.per_oracle.items())
            },
            "by_kind": dict(sorted(self.by_kind.items())),
            "wall_time_s": round(self.wall_time_s, 3),
            "interrupted": self.interrupted,
        }


def run_driver(
    seeds: int | list[int],
    shapes: tuple[str, ...] = SHAPES,
    oracles: tuple[str, ...] = ORACLE_NAMES,
    *,
    seed_base: int = 0,
    n_inputs: int = DEFAULT_INPUTS,
    max_steps: int = DEFAULT_MAX_STEPS,
    extra_variants: dict[str, VariantFn] | None = None,
    on_case=None,
    engine: str = DEFAULT_ENGINE,
    jobs: int = 1,
    solver: str = "mincut",
) -> tuple[DriverStats, list[CaseResult]]:
    """Fuzz ``seeds`` × ``shapes`` cases and aggregate statistics.

    Returns the stats plus every *failing* case result (passing cases are
    counted but not kept, so a long run stays O(failures) in memory).
    ``on_case`` is an optional progress callback receiving each
    :class:`CaseResult` as it finishes.

    ``jobs > 1`` shards the seed list over worker processes.  Cases are
    deterministic in ``(seed, shape)``, statistics merge commutatively
    and the failing list is re-sorted into the sequential (shape, seed)
    order, so the aggregate is byte-identical to a single-process run
    apart from wall time.  In parallel mode ``on_case`` only sees
    *failing* cases (passing ones are counted in the worker and never
    cross the process boundary), and ``extra_variants`` callables must be
    picklable (module-level functions).
    """
    if isinstance(seeds, int):
        seeds = [seed_base + i for i in range(seeds)]
    t0 = time.perf_counter()
    if jobs > 1 and len(seeds) > 1:
        stats, failing = _run_driver_parallel(
            seeds,
            shapes,
            oracles,
            n_inputs=n_inputs,
            max_steps=max_steps,
            extra_variants=extra_variants,
            on_case=on_case,
            engine=engine,
            jobs=jobs,
            solver=solver,
        )
        stats.wall_time_s = time.perf_counter() - t0
        return stats, failing

    stats = DriverStats()
    failing: list[CaseResult] = []
    for shape in shapes:
        for seed in seeds:
            result = run_case(
                seed,
                shape,
                oracles=oracles,
                n_inputs=n_inputs,
                max_steps=max_steps,
                extra_variants=extra_variants,
                engine=engine,
                solver=solver,
            )
            stats.record(result)
            if not result.passed:
                failing.append(result)
            if on_case is not None:
                on_case(result)
    stats.wall_time_s = time.perf_counter() - t0
    return stats, failing


def _shard_worker(
    seeds: list[int],
    *,
    shapes: tuple[str, ...],
    oracles: tuple[str, ...],
    n_inputs: int,
    max_steps: int,
    extra_variants: dict[str, VariantFn] | None,
    engine: str,
    solver: str,
) -> tuple[DriverStats, list[CaseResult]]:
    """One worker process: a sequential run over its seed shard."""
    return run_driver(
        seeds,
        shapes,
        oracles,
        n_inputs=n_inputs,
        max_steps=max_steps,
        extra_variants=extra_variants,
        engine=engine,
        jobs=1,
        solver=solver,
    )


def _run_driver_parallel(
    seeds: list[int],
    shapes: tuple[str, ...],
    oracles: tuple[str, ...],
    *,
    n_inputs: int,
    max_steps: int,
    extra_variants: dict[str, VariantFn] | None,
    on_case,
    engine: str,
    jobs: int,
    solver: str,
) -> tuple[DriverStats, list[CaseResult]]:
    """Shard seeds round-robin over processes; merge deterministically."""
    shards = [seeds[i::jobs] for i in range(jobs)]
    shards = [shard for shard in shards if shard]
    worker = partial(
        _shard_worker,
        shapes=shapes,
        oracles=oracles,
        n_inputs=n_inputs,
        max_steps=max_steps,
        extra_variants=extra_variants,
        engine=engine,
        solver=solver,
    )
    stats = DriverStats()
    failing: list[CaseResult] = []
    try:
        shard_results = parallel_map(worker, shards, jobs=len(shards))
    except ParallelMapError as exc:
        # Cut short (Ctrl-C, dead worker): keep every completed shard's
        # statistics and failures instead of discarding the whole run.
        shard_results = list(exc.partial.values())
        stats.interrupted = True
        stats.interrupt_reason = type(exc.cause).__name__
    for shard_stats, shard_failing in shard_results:
        stats.merge(shard_stats)
        failing.extend(shard_failing)
    seed_pos = {seed: i for i, seed in enumerate(seeds)}
    failing.sort(key=lambda r: (shapes.index(r.shape), seed_pos[r.seed]))
    if on_case is not None:
        for result in failing:
            on_case(result)
    return stats, failing
