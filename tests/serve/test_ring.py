"""Consistent-hash ring: stability under membership change, balance,
cross-process determinism."""

import json
import subprocess
import sys

import pytest

from repro.serve.cluster.ring import DEFAULT_VNODES, HashRing, remap_fraction

KEYS_1K = [f"artifact-key-{i:04d}" for i in range(1000)]


class TestStability:
    """The property the cluster's cache coherence rests on: membership
    changes move ~1/N of the key space, not all of it."""

    @pytest.mark.parametrize("n", [2, 3, 4, 8])
    def test_adding_a_worker_remaps_at_most_1_5_over_n(self, n):
        nodes = [f"worker-{i}" for i in range(n)]
        before = HashRing(nodes)
        after = HashRing(nodes + [f"worker-{n}"])
        fraction = remap_fraction(before, after, KEYS_1K)
        # Ideal is 1/(n+1); 1.5/n is the pinned engineering bound.
        assert fraction <= 1.5 / n
        assert fraction > 0  # the new node does take ownership of keys

    @pytest.mark.parametrize("n", [3, 4, 8])
    def test_removing_a_worker_remaps_at_most_1_5_over_n(self, n):
        nodes = [f"worker-{i}" for i in range(n)]
        before = HashRing(nodes)
        after = HashRing(nodes)
        after.remove("worker-0")
        fraction = remap_fraction(before, after, KEYS_1K)
        assert fraction <= 1.5 / n

    def test_only_keys_owned_by_the_removed_node_move(self):
        ring = HashRing(["a", "b", "c"])
        owned_by_c = [k for k in KEYS_1K if ring.route(k) == "c"]
        shrunk = HashRing(["a", "b", "c"])
        shrunk.remove("c")
        for key in KEYS_1K:
            if key in owned_by_c:
                assert shrunk.route(key) in {"a", "b"}
            else:
                # Survivors keep every key they already owned.
                assert shrunk.route(key) == ring.route(key)

    def test_restart_preserves_ownership(self):
        """A worker restart keeps its worker_id, so the rebuilt ring is
        identical and nothing remaps."""
        before = HashRing(["w0", "w1", "w2"])
        after = HashRing(["w2", "w0", "w1"])  # construction order differs
        assert remap_fraction(before, after, KEYS_1K) == 0.0


class TestDeterminism:
    def test_routing_is_deterministic_across_processes(self):
        """sha256 routing must not depend on PYTHONHASHSEED: a fresh
        interpreter with a different seed agrees on every owner."""
        nodes = ["worker-0", "worker-1", "worker-2"]
        keys = KEYS_1K[:50]
        script = (
            "import json, sys\n"
            "from repro.serve.cluster.ring import HashRing\n"
            f"ring = HashRing({nodes!r})\n"
            f"print(json.dumps([ring.route(k) for k in {keys!r}]))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "12345"},
        )
        local = HashRing(nodes)
        assert json.loads(out.stdout) == [local.route(k) for k in keys]


class TestBalance:
    def test_every_node_owns_a_meaningful_share(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        counts = {node: 0 for node in ring.nodes()}
        for key in KEYS_1K:
            counts[ring.route(key)] += 1
        assert sum(counts.values()) == len(KEYS_1K)
        for node, count in counts.items():
            # Perfect balance is 250; 64 vnodes keeps every share
            # within a loose 2x band of it.
            assert 100 <= count <= 500, (node, counts)

    def test_describe_reports_vnode_distribution(self):
        ring = HashRing(["a", "b"])
        info = ring.describe()
        assert info["nodes"] == ["a", "b"]
        assert info["vnodes"] == DEFAULT_VNODES
        assert info["points"] == {"a": DEFAULT_VNODES, "b": DEFAULT_VNODES}


class TestErrors:
    def test_duplicate_add_raises(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError, match="already on the ring"):
            ring.add("a")

    def test_remove_absent_raises(self):
        with pytest.raises(KeyError):
            HashRing(["a"]).remove("b")

    def test_route_on_empty_ring_raises(self):
        with pytest.raises(LookupError):
            HashRing().route("k")

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)

    def test_membership_protocol(self):
        ring = HashRing(["a", "b"])
        assert len(ring) == 2
        assert "a" in ring and "c" not in ring
        assert ring.nodes() == frozenset({"a", "b"})

    def test_remap_fraction_of_no_keys_is_none(self):
        ring = HashRing(["a"])
        assert remap_fraction(ring, ring, []) is None
