"""E6 — Section 4 comparison: MC-SSAPRE vs MC-PRE problem sizes.

The paper's efficiency argument: EFGs (sparse SSA-graph networks) are much
smaller than MC-PRE's CFG-derived networks, while both reach the same
optimum.  Timed unit: one full MC-PRE compile (the slower of the two).
"""

from conftest import SUITE_SUBSET, emit

from repro.bench.comparison import compare_workload, render_comparison
from repro.bench.workloads import load_workload


def test_section4_network_sizes(benchmark):
    benchmark.pedantic(
        compare_workload, args=(load_workload("mcf"),), rounds=1, iterations=1
    )

    comparisons = [
        compare_workload(load_workload(name), use_train_as_ref=True)
        for name in SUITE_SUBSET
    ]
    emit("Section 4 (flow-network size comparison)",
         render_comparison(comparisons))

    total_efg_effort = sum(c.efg_effort for c in comparisons)
    total_mcpre_effort = sum(c.mcpre_effort for c in comparisons)
    # The sparse approach shrinks the min-cut workload by a large factor.
    assert total_efg_effort * 2 < total_mcpre_effort

    for c in comparisons:
        # Equal optima under the matching profile.
        assert c.mc_ssapre_cost == c.mc_pre_cost, c.name
        if c.efg_nodes:
            avg_efg = sum(c.efg_nodes) / len(c.efg_nodes)
            avg_mcpre = sum(c.mcpre_nodes) / len(c.mcpre_nodes)
            assert avg_efg < avg_mcpre, c.name
