"""Tests for SSA construction."""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import ProgramSpec, generate_program, random_args
from repro.ir.builder import FunctionBuilder
from repro.profiles.interp import run_function
from repro.ssa.construct import SSAConstructionError, construct_ssa
from repro.ssa.ssa_verifier import is_ssa, verify_ssa


class TestBasics:
    def test_produces_valid_ssa(self, diamond, while_loop, straightline):
        for func in (diamond, while_loop, straightline):
            construct_ssa(func)
            verify_ssa(func)
            assert is_ssa(func)

    def test_phis_placed_at_join(self, while_loop):
        construct_ssa(while_loop)
        head = while_loop.blocks["head"]
        phi_names = {phi.target.name for phi in head.phis}
        assert {"i", "acc"} <= phi_names

    def test_pruned_no_dead_phis(self, diamond):
        """x is dead at the join in the diamond: no phi for it."""
        b = FunctionBuilder("f", params=["c"])
        b.block("entry")
        b.branch("c", "l", "r")
        b.block("l")
        b.copy("x", 1)
        b.jump("j")
        b.block("r")
        b.copy("x", 2)
        b.jump("j")
        b.block("j")
        b.ret(0)  # x never used
        func = b.build()
        construct_ssa(func)
        assert func.blocks["j"].phis == []

    def test_params_get_version_one(self, straightline):
        construct_ssa(straightline)
        assert all(p.version == 1 for p in straightline.params)

    def test_rejects_double_construction(self, diamond):
        construct_ssa(diamond)
        with pytest.raises(SSAConstructionError):
            construct_ssa(diamond)

    def test_rejects_use_of_undefined(self):
        b = FunctionBuilder("f")
        b.block("entry")
        b.assign("x", "add", "ghost", 1)
        b.ret("x")
        with pytest.raises(SSAConstructionError):
            construct_ssa(b.build())


class TestSemanticPreservation:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_generated_programs_unchanged(self, seed):
        spec = ProgramSpec(name="c", seed=seed, max_depth=2)
        prog = generate_program(spec)
        args = random_args(spec, 1)
        before = run_function(copy.deepcopy(prog.func), args)
        construct_ssa(prog.func)
        verify_ssa(prog.func)
        after = run_function(prog.func, args)
        assert before.observable() == after.observable()

    def test_loop_carried_values(self, while_loop):
        before = run_function(copy.deepcopy(while_loop), [2, 3, 7])
        construct_ssa(while_loop)
        after = run_function(while_loop, [2, 3, 7])
        assert before.observable() == after.observable()


class TestVersioning:
    def test_every_def_unique(self, while_loop):
        construct_ssa(while_loop)
        seen = set()
        for param in while_loop.params:
            seen.add((param.name, param.version))
        for block in while_loop:
            for var in block.defined_vars():
                key = (var.name, var.version)
                assert key not in seen
                seen.add(key)

    def test_redefinitions_get_increasing_versions(self):
        b = FunctionBuilder("f", params=["a"])
        b.block("entry")
        for _ in range(4):
            b.assign("x", "add", "a", 1)
        b.ret("x")
        func = b.build()
        construct_ssa(func)
        versions = [
            stmt.target.version for stmt in func.blocks["entry"].body
        ]
        assert versions == sorted(versions)
        assert len(set(versions)) == 4
