"""Functions and basic blocks.

A :class:`Function` owns an ordered mapping of labelled
:class:`BasicBlock` objects.  Control flow is stored only in terminators;
predecessor/successor views are provided by :mod:`repro.ir.cfg`, which is
rebuilt on demand so block surgery never leaves stale caches behind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.ir.instructions import (
    Assign,
    BinOp,
    CondJump,
    Jump,
    Load,
    Output,
    Phi,
    Return,
    Statement,
    Store,
    Terminator,
    UnaryOp,
)
from repro.ir.values import Var


@dataclass(slots=True)
class BasicBlock:
    """One basic block: phis, body statements, terminator."""

    label: str
    phis: list[Phi] = field(default_factory=list)
    body: list[Statement] = field(default_factory=list)
    terminator: Terminator = field(default_factory=Return)

    def successors(self) -> tuple[str, ...]:
        return self.terminator.successors()

    def statements(self) -> Iterator[Statement]:
        """Iterate body statements (not phis, not the terminator)."""
        return iter(self.body)

    def defined_vars(self) -> Iterator[Var]:
        """All variables defined in this block (phis then body)."""
        for phi in self.phis:
            yield phi.target
        for stmt in self.body:
            if isinstance(stmt, Assign):
                yield stmt.target

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"  {phi}" for phi in self.phis)
        lines.extend(f"  {stmt}" for stmt in self.body)
        lines.append(f"  {self.terminator}")
        return "\n".join(lines)


class Function:
    """A single-entry procedure made of basic blocks.

    Blocks are kept in insertion order in :attr:`blocks`; the entry block is
    named by :attr:`entry`.  ``params`` lists the formal parameters (base
    variables; SSA construction assigns them version 1 at entry).
    """

    def __init__(self, name: str, params: list[Var] | None = None) -> None:
        self.name = name
        self.params: list[Var] = list(params or [])
        #: Array symbols: name -> length.  A separate, non-SSA namespace;
        #: contents are initialised deterministically from the name (see
        #: :func:`repro.ir.memory.initial_array`) and mutated by stores.
        self.arrays: dict[str, int] = {}
        self.blocks: dict[str, BasicBlock] = {}
        self.entry: str | None = None
        self._label_counter = 0
        self._temp_counter = 0
        self._base_names: set[str] | None = None
        self._cfg_generation = 0
        self._code_generation = 0

    # ------------------------------------------------------------------
    # Mutation generations (consumed by repro.passes.cache.AnalysisCache)
    # ------------------------------------------------------------------
    @property
    def cfg_generation(self) -> int:
        """Bumped whenever the CFG shape (blocks/edges) may have changed."""
        return self._cfg_generation

    @property
    def code_generation(self) -> int:
        """Bumped whenever any instruction may have changed.

        A CFG mutation is also a code mutation, so this never lags
        :attr:`cfg_generation`.
        """
        return self._code_generation

    def mark_cfg_mutated(self) -> None:
        """Record a (possible) CFG-shape mutation."""
        self._cfg_generation += 1
        self._code_generation += 1

    def mark_code_mutated(self) -> None:
        """Record a (possible) instruction mutation with the CFG intact."""
        self._code_generation += 1

    # ------------------------------------------------------------------
    # Array management
    # ------------------------------------------------------------------
    def declare_array(self, name: str, length: int) -> None:
        """Register array *name* with *length* elements.

        Raises on duplicate declarations and non-positive or oversized
        lengths; array contents at entry are a pure function of the name
        (see :mod:`repro.ir.memory`).
        """
        from repro.ir.memory import MAX_ARRAY_LENGTH

        if name in self.arrays:
            raise ValueError(f"duplicate array declaration: {name!r}")
        if length <= 0 or length > MAX_ARRAY_LENGTH:
            raise ValueError(
                f"array {name!r} length must be in 1..{MAX_ARRAY_LENGTH}, "
                f"got {length}"
            )
        self.arrays[name] = length
        self.mark_code_mutated()

    # ------------------------------------------------------------------
    # Block management
    # ------------------------------------------------------------------
    def add_block(self, label: str | None = None) -> BasicBlock:
        """Create and register a new block; the first one becomes the entry."""
        if label is None:
            label = self.fresh_label()
        if label in self.blocks:
            raise ValueError(f"duplicate block label: {label!r}")
        block = BasicBlock(label)
        self.blocks[label] = block
        if self.entry is None:
            self.entry = label
        self.mark_cfg_mutated()
        return block

    def remove_block(self, label: str) -> None:
        """Delete a block (caller is responsible for fixing references)."""
        if label == self.entry:
            raise ValueError("cannot remove the entry block")
        del self.blocks[label]
        self.mark_cfg_mutated()

    def block(self, label: str) -> BasicBlock:
        return self.blocks[label]

    @property
    def entry_block(self) -> BasicBlock:
        if self.entry is None:
            raise ValueError(f"function {self.name!r} has no blocks")
        return self.blocks[self.entry]

    def fresh_label(self, hint: str = "B") -> str:
        """A block label not yet used in this function."""
        while True:
            self._label_counter += 1
            label = f"{hint}{self._label_counter}"
            if label not in self.blocks:
                return label

    def fresh_temp(self, hint: str = "%t") -> Var:
        """A variable base name not used anywhere in this function.

        The name set is scanned once and cached; every name handed out is
        added to the cache, so repeated calls are O(1).  (All definition
        paths in this code base either reuse existing names or come
        through this method, keeping the cache sound.)
        """
        if self._base_names is None:
            self._base_names = self._all_base_names()
        while True:
            self._temp_counter += 1
            name = f"{hint}{self._temp_counter}"
            if name not in self._base_names:
                self._base_names.add(name)
                return Var(name)

    def _all_base_names(self) -> set[str]:
        names = {param.name for param in self.params}
        for block in self.blocks.values():
            for var in block.defined_vars():
                names.add(var.name)
        return names

    # ------------------------------------------------------------------
    # Whole-function iteration helpers
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks.values())

    def __len__(self) -> int:
        return len(self.blocks)

    def statement_count(self) -> int:
        """Total number of phis + body statements + terminators."""
        return sum(len(b.phis) + len(b.body) + 1 for b in self)

    # ------------------------------------------------------------------
    # Cloning
    # ------------------------------------------------------------------
    def clone(self, name: str | None = None) -> "Function":
        """A deep, independent copy of this function.

        Equivalent to ``copy.deepcopy`` for every IR type that can occur
        in a verified function, but an order of magnitude faster: the IR
        is a closed shape (blocks → phis/statements/terminator → frozen
        operands), so nothing needs memo bookkeeping.  Operand objects
        (:class:`Var`/:class:`Const`) are immutable and shared; every
        mutable instruction object is fresh, so transforming the clone
        can never leak into the original.
        """
        out = Function(name or self.name, params=list(self.params))
        out.arrays = dict(self.arrays)
        out.entry = self.entry
        out._label_counter = self._label_counter
        out._temp_counter = self._temp_counter
        for label, block in self.blocks.items():
            copied = BasicBlock(label)
            copied.phis = [Phi(phi.target, dict(phi.args)) for phi in block.phis]
            copied.body = [_clone_statement(stmt) for stmt in block.body]
            copied.terminator = _clone_terminator(block.terminator)
            out.blocks[label] = copied
        return out

    def __str__(self) -> str:
        from repro.ir.printer import format_function

        return format_function(self)


def _clone_statement(stmt: Statement) -> Statement:
    if isinstance(stmt, Assign):
        rhs = stmt.rhs
        if isinstance(rhs, BinOp):
            rhs = BinOp(rhs.op, rhs.left, rhs.right)
        elif isinstance(rhs, UnaryOp):
            rhs = UnaryOp(rhs.op, rhs.operand)
        elif isinstance(rhs, Load):
            rhs = Load(rhs.array, rhs.index)
        return Assign(stmt.target, rhs)
    if isinstance(stmt, Output):
        return Output(stmt.value)
    if isinstance(stmt, Store):
        return Store(stmt.array, stmt.index, stmt.value)
    raise TypeError(f"cannot clone statement {stmt!r}")


def _clone_terminator(term: Terminator) -> Terminator:
    if isinstance(term, Jump):
        return Jump(term.target)
    if isinstance(term, CondJump):
        return CondJump(term.cond, term.true_target, term.false_target)
    if isinstance(term, Return):
        return Return(term.value)
    raise TypeError(f"cannot clone terminator {term!r}")
