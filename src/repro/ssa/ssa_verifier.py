"""SSA-specific well-formedness checks.

Beyond the structural checks of :mod:`repro.ir.verifier`, an SSA function
must satisfy: every versioned variable has exactly one definition; every
use is dominated by its definition (for a phi argument, the definition must
dominate the end of the corresponding predecessor); every used variable
carries a version.
"""

from __future__ import annotations

from repro.analysis.dominators import DominatorTree
from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.instructions import Assign
from repro.ir.values import Var
from repro.ir.verifier import VerificationError, verify_function


def verify_ssa(func: Function) -> None:
    """Raise :class:`VerificationError` if *func* is not well-formed SSA."""
    verify_function(func)
    cfg = CFG(func)
    domtree = DominatorTree(cfg)
    reachable = set(domtree.rpo)

    # Collect the unique definition site of each SSA variable.
    # def site: (label, "phi") or (label, index in body); params at entry.
    def_site: dict[Var, tuple[str, int]] = {}

    def define(var: Var, label: str, index: int) -> None:
        if var.version is None:
            raise VerificationError(f"{func.name}: unversioned definition {var}")
        if var in def_site:
            raise VerificationError(f"{func.name}: {var} defined more than once")
        def_site[var] = (label, index)

    assert func.entry is not None
    for param in func.params:
        define(param, func.entry, -1)
    for label in reachable:
        block = func.blocks[label]
        for phi in block.phis:
            define(phi.target, label, -1)  # phis define at block head
        for index, stmt in enumerate(block.body):
            if isinstance(stmt, Assign):
                define(stmt.target, label, index)

    def check_use(var: Var, label: str, index: int, where: str) -> None:
        if var.version is None:
            raise VerificationError(
                f"{func.name}: unversioned use of {var} in {where}"
            )
        site = def_site.get(var)
        if site is None:
            raise VerificationError(f"{func.name}: use of undefined {var} in {where}")
        def_label, def_index = site
        if def_label == label:
            if def_index >= index:
                raise VerificationError(
                    f"{func.name}: {var} used before its definition in {where}"
                )
        elif not domtree.dominates(def_label, label):
            raise VerificationError(
                f"{func.name}: definition of {var} in {def_label!r} does not "
                f"dominate its use in {where}"
            )

    for label in reachable:
        block = func.blocks[label]
        for phi in block.phis:
            for pred, arg in phi.args.items():
                if isinstance(arg, Var):
                    # The def must dominate the end of the predecessor.
                    check_use(arg, pred, len(func.blocks[pred].body), f"phi in {label}")
        for index, stmt in enumerate(block.body):
            for operand in stmt.used_operands():
                if isinstance(operand, Var):
                    check_use(operand, label, index, f"{stmt} in {label}")
        for operand in block.terminator.used_operands():
            if isinstance(operand, Var):
                check_use(
                    operand, label, len(block.body), f"terminator of {label}"
                )


def is_ssa(func: Function) -> bool:
    """Cheap test: does the function look like SSA (versioned defs)?"""
    for block in func:
        if block.phis:
            return True
        for stmt in block.body:
            if isinstance(stmt, Assign) and stmt.target.version is not None:
                return True
    return any(p.version is not None for p in func.params)
