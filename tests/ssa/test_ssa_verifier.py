"""Tests for the SSA verifier."""

import pytest

from repro.ir.builder import FunctionBuilder
from repro.ir.instructions import Assign, BinOp
from repro.ir.values import Var
from repro.ir.verifier import VerificationError
from repro.ssa.construct import construct_ssa
from repro.ssa.ssa_verifier import is_ssa, verify_ssa


def make_ssa_diamond(diamond):
    construct_ssa(diamond)
    return diamond


def test_valid_ssa_passes(diamond, while_loop):
    construct_ssa(diamond)
    verify_ssa(diamond)
    construct_ssa(while_loop)
    verify_ssa(while_loop)


def test_double_definition_rejected(diamond):
    construct_ssa(diamond)
    left = diamond.blocks["left"]
    existing = left.body[0].target
    left.body.append(Assign(existing, BinOp("add", Var("a", 1), Var("b", 1))))
    with pytest.raises(VerificationError):
        verify_ssa(diamond)


def test_unversioned_def_rejected(diamond):
    construct_ssa(diamond)
    diamond.blocks["left"].body.append(Assign(Var("q"), Var("a", 1)))
    with pytest.raises(VerificationError):
        verify_ssa(diamond)


def test_use_of_undefined_version_rejected(diamond):
    construct_ssa(diamond)
    diamond.blocks["left"].body.append(
        Assign(Var("q", 1), BinOp("add", Var("a", 99), Var("b", 1)))
    )
    with pytest.raises(VerificationError):
        verify_ssa(diamond)


def test_use_not_dominated_by_def_rejected(diamond):
    construct_ssa(diamond)
    left = diamond.blocks["left"]
    x_version = left.body[0].target
    # Use x in 'right', which 'left' does not dominate.
    diamond.blocks["right"].body.append(Assign(Var("q", 1), x_version))
    with pytest.raises(VerificationError):
        verify_ssa(diamond)


def test_use_before_def_in_same_block_rejected():
    b = FunctionBuilder("f", params=["a"])
    b.block("entry")
    b.ret()
    func = b.build()
    func.params = [Var("a", 1)]
    entry = func.blocks["entry"]
    entry.body.append(Assign(Var("y", 1), Var("x", 1)))
    entry.body.append(Assign(Var("x", 1), Var("a", 1)))
    with pytest.raises(VerificationError):
        verify_ssa(func)


def test_phi_arg_must_dominate_pred_end(while_loop):
    construct_ssa(while_loop)
    head = while_loop.blocks["head"]
    phi = head.phis[0]
    # Replace the entry-edge argument with a version defined in body.
    body_defs = [stmt.target for stmt in while_loop.blocks["body"].body]
    phi.args["entry"] = body_defs[0]
    with pytest.raises(VerificationError):
        verify_ssa(while_loop)


def test_loop_carried_phi_arg_accepted(while_loop):
    construct_ssa(while_loop)
    verify_ssa(while_loop)  # back-edge args defined in body: legal


def test_is_ssa(diamond, straightline):
    assert not is_ssa(straightline)
    construct_ssa(straightline)
    assert is_ssa(straightline)
