"""Tests for the structural IR verifier."""

import pytest

from repro.ir.builder import FunctionBuilder
from repro.ir.instructions import Phi
from repro.ir.values import Var
from repro.ir.verifier import VerificationError, has_critical_edges, verify_function


def test_valid_function_passes(diamond, while_loop, straightline):
    verify_function(diamond)
    verify_function(while_loop)
    verify_function(straightline)


def test_missing_entry_rejected():
    from repro.ir.function import Function

    func = Function("f")
    with pytest.raises(VerificationError):
        verify_function(func)


def test_duplicate_params_rejected():
    b = FunctionBuilder("f", params=["a", "a"])
    b.block("entry")
    b.ret()
    with pytest.raises(VerificationError):
        verify_function(b.build())


def test_dangling_branch_rejected():
    b = FunctionBuilder("f")
    b.block("entry")
    b.jump("nowhere")
    with pytest.raises(VerificationError):
        verify_function(b.build())


def test_phi_args_must_match_preds(diamond):
    join = diamond.blocks["join"]
    join.phis.append(Phi(Var("x", 1), {"left": Var("a", 1)}))  # missing 'right'
    with pytest.raises(VerificationError):
        verify_function(diamond)


def test_phi_with_extra_pred_rejected(diamond):
    join = diamond.blocks["join"]
    join.phis.append(
        Phi(Var("x", 1), {"left": Var("a", 1), "right": Var("a", 1), "bogus": Var("a", 1)})
    )
    with pytest.raises(VerificationError):
        verify_function(diamond)


def test_entry_phis_rejected():
    b = FunctionBuilder("f")
    b.block("entry")
    b.ret()
    func = b.build()
    func.blocks["entry"].phis.append(Phi(Var("x", 1), {}))
    with pytest.raises(VerificationError):
        verify_function(func)


def test_mislabeled_block_rejected(diamond):
    diamond.blocks["left"].label = "wrong"
    with pytest.raises(VerificationError):
        verify_function(diamond)


def test_non_statement_in_body_rejected(diamond):
    diamond.blocks["left"].body.append(object())
    with pytest.raises(VerificationError):
        verify_function(diamond)


class TestHasCriticalEdges:
    def test_diamond_has_none(self, diamond):
        assert not has_critical_edges(diamond)

    def test_while_loop_split_required(self, while_loop):
        # head -> done is not critical (done has 1 pred);
        # head -> body not critical either.
        assert not has_critical_edges(while_loop)

    def test_detects_critical(self):
        b = FunctionBuilder("f", params=["c"])
        b.block("entry")
        b.branch("c", "mid", "join")
        b.block("mid")
        b.jump("join")
        b.block("join")
        b.ret()
        assert has_critical_edges(b.build())
