"""Program analyses, with cache-aware entry points.

Each ``*_of`` helper accepts an optional
:class:`~repro.passes.cache.AnalysisCache`; with a cache the result is
memoised and shared across every pass of a pipeline, without one the
helper computes privately (building an ephemeral cache so that, e.g.,
the dominator tree and dominance frontiers of a single call still share
one CFG).

The imports from :mod:`repro.passes` are deferred into the function
bodies: ``repro.passes.analyses`` imports the analysis submodules, so a
module-level import here would be circular.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ir.function import Function

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.liveness import Liveness
    from repro.analysis.loops import LoopForest
    from repro.analysis.dominators import DominatorTree
    from repro.ir.cfg import CFG
    from repro.passes.cache import AnalysisCache


def _ensure(func: Function, cache: "AnalysisCache | None") -> "AnalysisCache":
    from repro.passes.cache import AnalysisCache

    return AnalysisCache.ensure(func, cache)


def cfg_of(func: Function, cache: "AnalysisCache | None" = None) -> "CFG":
    """The function's CFG view, cached when *cache* is given."""
    from repro.passes.analyses import CFG_ANALYSIS

    return _ensure(func, cache).get(CFG_ANALYSIS)


def dominator_tree_of(
    func: Function, cache: "AnalysisCache | None" = None
) -> "DominatorTree":
    """The function's dominator tree, cached when *cache* is given."""
    from repro.passes.analyses import DOMTREE_ANALYSIS

    return _ensure(func, cache).get(DOMTREE_ANALYSIS)


def dominance_frontiers_of(
    func: Function, cache: "AnalysisCache | None" = None
) -> dict[str, set[str]]:
    """Dominance frontiers of every reachable block."""
    from repro.passes.analyses import DOMFRONTIER_ANALYSIS

    return _ensure(func, cache).get(DOMFRONTIER_ANALYSIS)


def loop_forest_of(
    func: Function, cache: "AnalysisCache | None" = None
) -> "LoopForest":
    """The function's natural-loop forest."""
    from repro.passes.analyses import LOOPS_ANALYSIS

    return _ensure(func, cache).get(LOOPS_ANALYSIS)


def liveness_of(
    func: Function,
    by_version: bool = False,
    cache: "AnalysisCache | None" = None,
) -> "Liveness":
    """Live-variable analysis (per base name, or per SSA version)."""
    from repro.passes.analyses import LIVENESS_ANALYSIS, LIVENESS_SSA_ANALYSIS

    analysis = LIVENESS_SSA_ANALYSIS if by_version else LIVENESS_ANALYSIS
    return _ensure(func, cache).get(analysis)


__all__ = [
    "cfg_of",
    "dominator_tree_of",
    "dominance_frontiers_of",
    "loop_forest_of",
    "liveness_of",
]
