"""The array memory model: initial contents and the alias lattice."""

import pytest

from repro.ir.memory import (
    MAX_ARRAY_LENGTH,
    initial_array,
    is_load_key,
    key_may_trap,
    load_in_bounds,
    may_alias,
    store_kills_key,
)
from repro.ir.values import Const, Var


LOAD_CONST = ("load", ("arr", "A"), ("const", 5))
LOAD_VAR = ("load", ("arr", "A"), ("var", "i"))
SCALAR = ("add", ("var", "x"), ("const", 1))


class TestInitialArray:
    def test_deterministic_pure_function_of_name_and_length(self):
        assert initial_array("A", 8) == initial_array("A", 8)

    def test_prefix_stable_under_length(self):
        # The fill is a stream seeded by the name alone, so a longer
        # array extends (not reshuffles) the shorter one's contents.
        assert initial_array("A", 16)[:8] == initial_array("A", 8)

    def test_name_seeds_the_contents(self):
        assert initial_array("A", 8) != initial_array("B", 8)

    def test_values_small_and_signed(self):
        values = initial_array("xyz", 64)
        assert len(values) == 64
        assert all(-128 <= v <= 128 for v in values)
        assert any(v < 0 for v in values) and any(v > 0 for v in values)


class TestMayAlias:
    def test_distinct_arrays_never_alias(self):
        assert not may_alias("A", Var("i"), "B", Var("i"))
        assert not may_alias("A", Const(3), "B", Const(3))

    def test_unequal_constants_never_alias(self):
        assert not may_alias("A", Const(3), "A", Const(4))

    def test_equal_constants_alias(self):
        assert may_alias("A", Const(3), "A", Const(3))

    def test_symbolic_index_may_alias_anything_in_same_array(self):
        assert may_alias("A", Var("i"), "A", Const(3))
        assert may_alias("A", Const(3), "A", Var("i"))
        assert may_alias("A", Var("i"), "A", Var("j"))


class TestStoreKillsKey:
    def test_scalar_classes_never_killed(self):
        assert not store_kills_key("A", Var("i"), SCALAR)

    def test_other_array_never_kills(self):
        assert not store_kills_key("B", Var("i"), LOAD_CONST)

    def test_unequal_constant_indices_do_not_kill(self):
        assert not store_kills_key("A", Const(3), LOAD_CONST)

    def test_equal_constant_index_kills(self):
        assert store_kills_key("A", Const(5), LOAD_CONST)

    def test_symbolic_store_index_kills_everything_in_array(self):
        assert store_kills_key("A", Var("i"), LOAD_CONST)
        assert store_kills_key("A", Var("i"), LOAD_VAR)

    def test_symbolic_load_index_killed_by_constant_store(self):
        # Base-name equality says nothing about runtime values.
        assert store_kills_key("A", Const(3), LOAD_VAR)

    def test_is_load_key(self):
        assert is_load_key(LOAD_CONST) and is_load_key(LOAD_VAR)
        assert not is_load_key(SCALAR)


class TestSpeculationPredicate:
    ARRAYS = {"A": 8}

    def test_const_in_bounds_load_is_provably_safe(self):
        assert load_in_bounds(LOAD_CONST, self.ARRAYS)
        assert not key_may_trap(LOAD_CONST, self.ARRAYS)

    def test_const_out_of_bounds_may_trap(self):
        oob = ("load", ("arr", "A"), ("const", 8))
        negative = ("load", ("arr", "A"), ("const", -1))
        assert not load_in_bounds(oob, self.ARRAYS)
        assert key_may_trap(oob, self.ARRAYS)
        assert key_may_trap(negative, self.ARRAYS)

    def test_symbolic_index_may_trap(self):
        assert not load_in_bounds(LOAD_VAR, self.ARRAYS)
        assert key_may_trap(LOAD_VAR, self.ARRAYS)

    def test_undeclared_array_may_trap(self):
        assert key_may_trap(LOAD_CONST, {})

    def test_bool_payload_is_not_an_index(self):
        # json round-trips can surface bools where ints are expected;
        # True < 8 holds numerically but is not a provably-safe index.
        sneaky = ("load", ("arr", "A"), ("const", True))
        assert not load_in_bounds(sneaky, self.ARRAYS)

    def test_scalar_trapping_table_unchanged(self):
        assert key_may_trap(("div", ("var", "a"), ("var", "b")), self.ARRAYS)
        assert not key_may_trap(SCALAR, self.ARRAYS)

    def test_max_length_bounds_declarations(self):
        from repro.ir.function import Function

        func = Function("f", [])
        with pytest.raises(ValueError):
            func.declare_array("A", MAX_ARRAY_LENGTH + 1)
        func.declare_array("A", MAX_ARRAY_LENGTH)
