"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import copy

import pytest
from hypothesis import settings

# Tier-1 property tests draw deterministic examples: generated programs can
# contain self-multiplication chains (``v = mul v, v`` in a loop), so an
# unlucky random seed can produce astronomically large integers whose single
# multiplication stalls the interpreter for minutes — the step budget bounds
# steps, not the cost of one step.  A verified-green example set must stay
# green.  Open-ended randomized exploration lives in ``repro.check``, whose
# driver classifies and shrinks failures instead of hanging a test run.
settings.register_profile("tier1", derandomize=True)
settings.load_profile("tier1")

from repro.bench.generator import ProgramSpec, generate_program, random_args
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.transforms import split_critical_edges
from repro.ssa.construct import construct_ssa


def build_diamond() -> Function:
    """The classic PRE diamond: a+b in one arm, again at the join."""
    b = FunctionBuilder("diamond", params=["a", "b", "c"])
    b.block("entry")
    b.branch("c", "left", "right")
    b.block("left")
    b.assign("x", "add", "a", "b")
    b.output("x")
    b.jump("join")
    b.block("right")
    b.copy("y", 7)
    b.output("y")
    b.jump("join")
    b.block("join")
    b.assign("z", "add", "a", "b")
    b.ret("z")
    return b.build()


def build_while_loop() -> Function:
    """A while loop with an invariant a+b inside the body."""
    b = FunctionBuilder("loop", params=["a", "b", "n"])
    b.block("entry")
    b.copy("i", 0)
    b.copy("acc", 0)
    b.jump("head")
    b.block("head")
    b.assign("c", "lt", "i", "n")
    b.branch("c", "body", "done")
    b.block("body")
    b.assign("v", "add", "a", "b")
    b.assign("acc", "add", "acc", "v")
    b.assign("i", "add", "i", 1)
    b.jump("head")
    b.block("done")
    b.ret("acc")
    return b.build()


def build_straightline() -> Function:
    """Straight-line redundancy (local CSE territory)."""
    b = FunctionBuilder("straight", params=["a", "b"])
    b.block("entry")
    b.assign("x", "add", "a", "b")
    b.assign("y", "add", "a", "b")
    b.assign("z", "mul", "x", "y")
    b.ret("z")
    return b.build()


def as_ssa(func: Function) -> Function:
    """Split critical edges and construct SSA on a copy."""
    work = copy.deepcopy(func)
    split_critical_edges(work)
    construct_ssa(work)
    return work


def small_generated(seed: int, **overrides) -> tuple:
    """A small generated program plus deterministic args."""
    defaults = dict(
        name=f"t{seed}",
        seed=seed,
        max_depth=2,
        region_length=4,
        loop_mask_bits=3,
        loop_base=2,
    )
    defaults.update(overrides)
    spec = ProgramSpec(**defaults)
    prog = generate_program(spec)
    return prog, random_args(spec, 1), random_args(spec, 2)


@pytest.fixture
def diamond() -> Function:
    return build_diamond()


@pytest.fixture
def while_loop() -> Function:
    return build_while_loop()


@pytest.fixture
def straightline() -> Function:
    return build_straightline()
